// redspot-serve: the bid-advisor daemon (DESIGN.md §12).
//
// One process, three moving parts:
//
//   * the poll loop (this file) owns the transport listener (unix socket
//     or TCP — common/transport) and every connection's read side, decodes
//     frames (serve/proto.hpp) and dispatches: trace traffic is applied
//     inline (TickStore is the single writer), advise requests pass the
//     load-shedding gate (serve/shed.hpp) and are submitted to the batcher
//     keyed by spec hash, stats/register are answered immediately;
//   * the Batcher<spec-hash, AdviseWork> over a ThreadPool runs advise
//     batches — per-key serialization IS the model-exclusivity discipline
//     compute_advice requires, and same-key requests queued behind a
//     running batch coalesce into one model resolution;
//   * the ModelRegistry shares ModelEntries across tenants and bounds
//     their total footprint (LRU byte accounting; an evicted entry is
//     rebuilt from the live trace on next use).
//
// Responses are written from pool threads under a per-connection write
// mutex; a dead peer marks the connection for the poll loop to reap.
//
// Shutdown (SIGINT/SIGTERM via common/interrupt): stop accepting, sweep
// every connection's already-buffered requests (bounded non-blocking
// rounds — bytes the clients wrote before the signal are still answered),
// drain the batcher, print one final stats line, and return exit code 130.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace redspot::serve {

struct ServeOptions {
  /// Transport endpoint to listen on: "unix:PATH", "tcp:HOST:PORT", or a
  /// bare unix-socket path. tcp:HOST:0 binds an ephemeral port (see
  /// on_bound).
  std::string endpoint;
  /// Worker threads for advise batches; 0 = hardware concurrency.
  std::size_t threads = 0;
  std::size_t registry_bytes = 64u << 20;
  /// Batcher queue depth at which SLO-aware load shedding starts: over
  /// this bound, advise requests are answered from the last-good model
  /// snapshot with the staleness marker set (or Error "overloaded" when
  /// no snapshot exists) instead of queueing. 0 disables shedding.
  std::uint64_t shed_queue_limit = 1024;
  /// Print the per-second stats heartbeat and the final stats line.
  bool print_stats = true;
  /// Install SIGINT/SIGTERM handlers (tests running the server in-process
  /// manage the interrupt flag themselves).
  bool install_signal_handlers = true;
  /// Called once with the resolved bound endpoint (tcp:HOST:0 becomes the
  /// kernel-assigned port) before the first accept — in-process harnesses
  /// use it to learn where to dial. May be null.
  std::function<void(const std::string&)> on_bound;
};

/// Runs the daemon until interrupted. Returns the process exit code:
/// 130 after a graceful signal-driven drain, non-zero on fatal errors.
int run_server(const ServeOptions& options);

}  // namespace redspot::serve
