// Bid advice over shared incremental models (DESIGN.md §12).
//
// The serve daemon answers one question for many tenants: "given the live
// price history and my job's remaining work, what should I do right now?"
// The answer is exactly the offline Adaptive decision (Section 7 of the
// paper): rank every permutation of (bid, zone subset, policy) with
// evaluate_permutations over the trailing history window and adopt the
// cheapest, then derive the execution knobs — expected Markov up-time of
// the chosen zones at their current prices, and the Daly checkpoint
// interval that up-time implies.
//
// Tenants sharing a ModelSpec share one ModelEntry: one HistoryStats and
// one IncrementalMarkovModel per zone, slid incrementally as ticks arrive.
// compute_advice() MUTATES the entry (slides models, fills memos) and must
// therefore run under the entry's exclusivity discipline — the request
// batcher's per-key serialization in the server, plain single-threadedness
// in tests. advise_offline() is the from-scratch oracle: fresh stats,
// fresh models, same arithmetic; bit-identity between the two is the serve
// correctness contract (asserted in serve_test / bench_serve).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/adaptive/history_stats.hpp"
#include "core/policy.hpp"
#include "markov/incremental.hpp"
#include "trace/zone_traces.hpp"

namespace redspot::serve {

/// Identity of one shared model: tenants registering equal specs share one
/// ModelEntry. The defaults mirror AdaptiveStrategy::Options and the
/// paper's 2-day history window.
struct ModelSpec {
  Duration history_span = 2 * kDay;
  std::vector<Money> bid_grid = paper_bid_grid();
  std::size_t max_states = 32;  ///< Markov bins (quantile mode above this)
  std::size_t max_zones = 3;
  std::vector<PolicyKind> policies = {PolicyKind::kPeriodic,
                                      PolicyKind::kMarkovDaly};
  /// Fingerprint of the market regime the advice is computed for
  /// (market/regime.hpp regime_fingerprint). 0 = classic 2012; distinct
  /// regimes never share models or cached advice.
  std::uint64_t regime_fingerprint = 0;

  /// Order-sensitive fingerprint of every field; the registry key.
  std::uint64_t spec_hash() const;
  /// Registry byte accounting: steady-state footprint of one ModelEntry
  /// built from this spec against `num_zones` zones of `window_samples`
  /// samples each.
  std::size_t approx_bytes(std::size_t num_zones) const;
};

/// Per-request job parameters (the tenant's side of EstimatorInputs).
struct JobParams {
  Duration remaining_compute = 0;   ///< C_r
  Duration remaining_time = 0;      ///< T_r
  Duration checkpoint_cost = 300;   ///< t_c
  Duration restart_cost = 300;      ///< t_r
  Duration mean_queue_delay = 300;
  Money on_demand_rate = Money::dollars(2.40);
};

/// The answer, stamped with the history end it was computed from.
struct Advice {
  SimTime as_of = 0;  ///< history end time backing this advice
  Money bid;
  std::vector<std::size_t> zones;
  PolicyKind policy = PolicyKind::kPeriodic;
  Money predicted_cost;
  /// Summed Markov expected up-time of the chosen zones at their current
  /// prices under the recommended bid (the Markov-Daly MTBF input).
  Duration expected_uptime = 0;
  /// Daly-optimal compute seconds between checkpoints for that up-time;
  /// 0 when the recommended policy checkpoints at hour boundaries
  /// (Periodic) or when nothing is expected to survive (uptime == 0).
  Duration checkpoint_interval = 0;

  bool operator==(const Advice&) const = default;
};

/// One shared model: trailing-window permutation stats plus one sliding
/// Markov model per zone, all borrowing the live trace storage.
struct ModelEntry {
  explicit ModelEntry(ModelSpec s) : spec(std::move(s)) {}

  ModelSpec spec;
  std::optional<HistoryStats> hist;
  std::vector<IncrementalMarkovModel> zone_models;

  // Introspection: how often the incremental paths actually slid.
  std::uint64_t advises = 0;
};

/// Slides `entry` to the trailing window of `traces` ending at
/// traces.end() and answers `job`. Mutates the entry (see file comment);
/// the traces must be the same live storage across calls for the slides
/// to stay incremental.
Advice compute_advice(ModelEntry& entry, const ZoneTraceSet& traces,
                      const JobParams& job);

/// From-scratch oracle: the advice a fresh ModelEntry over the same traces
/// produces. Bit-identical to compute_advice() from any slide history.
Advice advise_offline(const ModelSpec& spec, const ZoneTraceSet& traces,
                      const JobParams& job);

}  // namespace redspot::serve
