#include "serve/client.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "fabric/socket.hpp"

namespace redspot::serve {

ServeClient::ServeClient(const std::string& socket_path,
                         int connect_timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_timeout_ms);
  for (;;) {
    fd_ = fabric::connect_unix(socket_path);
    if (fd_ >= 0) return;
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("serve client: connect timeout: " +
                               socket_path);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::send(const std::string& payload) {
  fabric::send_frame(fd_, payload);
}

std::string ServeClient::recv_frame() {
  std::string payload;
  for (;;) {
    switch (in_.next(&payload)) {
      case FrameStatus::kOk:
        return payload;
      case FrameStatus::kCorrupt:
        throw std::runtime_error("serve client: corrupt frame");
      case FrameStatus::kNeedMore:
        break;
    }
    if (!fabric::read_available(fd_, in_))
      throw std::runtime_error("serve client: daemon closed the connection");
  }
}

std::string ServeClient::recv_ok() {
  std::string payload = recv_frame();
  if (msg_type(payload) == MsgType::kError) {
    const auto err = decode_error(payload);
    throw ServeError(err ? err->request_id : 0,
                     err ? err->message : "malformed error reply");
  }
  return payload;
}

SimTime ServeClient::trace_init(const TraceInitMsg& m) {
  send(encode_trace_init(m));
  const auto ok = decode_trace_ok(recv_ok());
  if (!ok) throw std::runtime_error("serve client: bad TraceOk");
  return ok->end;
}

SimTime ServeClient::tick(const std::vector<Money>& prices) {
  send(encode_tick(TickMsg{prices}));
  const auto ack = decode_tick_ack(recv_ok());
  if (!ack) throw std::runtime_error("serve client: bad TickAck");
  return ack->end;
}

std::uint64_t ServeClient::register_spec(const ModelSpec& spec) {
  send(encode_register(RegisterMsg{spec}));
  const auto ok = decode_register_ok(recv_ok());
  if (!ok) throw std::runtime_error("serve client: bad RegisterOk");
  return ok->spec_hash;
}

void ServeClient::advise_async(std::uint64_t request_id,
                               std::uint64_t spec_hash, const JobParams& job) {
  send(encode_advise(AdviseMsg{request_id, spec_hash, job}));
}

AdviceMsg ServeClient::recv_advice() {
  const auto adv = decode_advice(recv_ok());
  if (!adv) throw std::runtime_error("serve client: bad Advice");
  return *adv;
}

AdviceMsg ServeClient::advise(std::uint64_t request_id,
                              std::uint64_t spec_hash, const JobParams& job) {
  advise_async(request_id, spec_hash, job);
  return recv_advice();
}

StatsReplyMsg ServeClient::stats() {
  send(encode_stats(StatsMsg{}));
  const auto s = decode_stats_reply(recv_ok());
  if (!s) throw std::runtime_error("serve client: bad StatsReply");
  return *s;
}

}  // namespace redspot::serve
