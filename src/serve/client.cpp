#include "serve/client.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "fault/fault_plan.hpp"

namespace redspot::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeClient::ServeClient(ServeClientOptions options)
    : opt_(std::move(options)),
      rng_(static_cast<std::uint64_t>(::getpid()), /*stream=*/0x5E57E) {
  const auto ep = transport::parse_endpoint(opt_.endpoint);
  if (!ep)
    throw std::runtime_error("serve client: bad endpoint: " + opt_.endpoint);
  endpoint_ = *ep;
  ensure_connected();
}

ServeClient::ServeClient(const std::string& endpoint, int connect_timeout_ms)
    : ServeClient(ServeClientOptions{endpoint, connect_timeout_ms}) {}

ServeClient::~ServeClient() = default;

void ServeClient::ensure_connected() {
  if (stream_) return;
  const BackoffPolicy backoff{/*base=*/20, /*cap=*/500, /*jitter=*/0.5};
  const std::int64_t deadline = now_ms() + opt_.connect_timeout_ms;
  int attempt = 1;
  for (;;) {
    std::unique_ptr<transport::Stream> stream = transport::connect(endpoint_);
    if (stream) {
      if (opt_.net_fault != nullptr)
        stream = opt_.net_fault->wrap(std::move(stream));
      stream_ = std::move(stream);
      in_ = FrameBuffer{};  // bytes from a previous connection are garbage
      return;
    }
    if (now_ms() >= deadline)
      throw std::runtime_error("serve client: connect timeout: " +
                               opt_.endpoint);
    const Duration delay = backoff_delay(backoff, attempt++, rng_.uniform());
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<std::int64_t>(delay)));
  }
}

void ServeClient::drop_connection() {
  stream_.reset();
  in_ = FrameBuffer{};
}

void ServeClient::send(const std::string& payload) {
  transport::send_frame(*stream_, payload);
}

std::string ServeClient::recv_frame() {
  const std::int64_t deadline = now_ms() + opt_.reply_timeout_ms;
  std::string payload;
  for (;;) {
    switch (in_.next(&payload)) {
      case FrameStatus::kOk:
        return payload;
      case FrameStatus::kCorrupt:
        throw std::runtime_error("serve client: corrupt frame");
      case FrameStatus::kNeedMore:
        break;
    }
    // A partitioned daemon never EOFs; bound the wait so a lost reply
    // surfaces as a connection failure instead of a hang.
    const std::int64_t remaining = deadline - now_ms();
    if (remaining <= 0)
      throw std::runtime_error("serve client: reply timeout");
    pollfd pfd{stream_->fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc < 0 && errno != EINTR)
      throw std::runtime_error("serve client: poll failed");
    if (rc <= 0) continue;  // timeout re-checked above; EINTR retried
    if (!stream_->read_into(in_))
      throw std::runtime_error("serve client: daemon closed the connection");
  }
}

std::string ServeClient::check_ok(std::string payload) {
  if (msg_type(payload) == MsgType::kError) {
    const auto err = decode_error(payload);
    throw ServeError(err ? err->request_id : 0,
                     err ? err->message : "malformed error reply");
  }
  return payload;
}

std::string ServeClient::transact(const std::string& payload, bool idempotent,
                                  const ReplyMatcher& matches) {
  int resends = 0;
  for (;;) {
    ensure_connected();
    try {
      send(payload);
      for (;;) {
        std::string reply = check_ok(recv_frame());
        if (matches(reply)) return reply;
        // Not ours: a duplicate-delivered reply to an *earlier* request
        // still buffered on this connection. Discard and keep reading —
        // the stale backlog is finite and the reply deadline bounds us.
      }
    } catch (const ServeError&) {
      throw;  // protocol-level answer; the connection is fine
    } catch (const std::runtime_error& e) {
      drop_connection();
      if (!idempotent)
        throw ConnectionLost(
            std::string("serve client: connection lost mid-request; the "
                        "request may or may not have been applied: ") +
            e.what());
      if (++resends > opt_.max_resends) throw;
    }
  }
}

namespace {

/// Matcher for replies identified by type alone (at most one such request
/// is ever in flight per blocking call).
ServeClient::ReplyMatcher is_type(MsgType want) {
  return [want](const std::string& reply) { return msg_type(reply) == want; };
}

}  // namespace

SimTime ServeClient::trace_init(const TraceInitMsg& m) {
  const auto ok = decode_trace_ok(transact(
      encode_trace_init(m), /*idempotent=*/false, is_type(MsgType::kTraceOk)));
  if (!ok) throw std::runtime_error("serve client: bad TraceOk");
  return ok->end;
}

SimTime ServeClient::tick(const std::vector<Money>& prices) {
  const auto ack =
      decode_tick_ack(transact(encode_tick(TickMsg{prices}),
                               /*idempotent=*/false,
                               is_type(MsgType::kTickAck)));
  if (!ack) throw std::runtime_error("serve client: bad TickAck");
  return ack->end;
}

std::uint64_t ServeClient::register_spec(const ModelSpec& spec) {
  const auto ok = decode_register_ok(transact(
      encode_register(RegisterMsg{spec}), /*idempotent=*/true,
      is_type(MsgType::kRegisterOk)));
  if (!ok) throw std::runtime_error("serve client: bad RegisterOk");
  return ok->spec_hash;
}

void ServeClient::advise_async(std::uint64_t request_id,
                               std::uint64_t spec_hash, const JobParams& job) {
  ensure_connected();
  send(encode_advise(AdviseMsg{request_id, spec_hash, job}));
}

AdviceMsg ServeClient::recv_advice() {
  const auto adv = decode_advice(check_ok(recv_frame()));
  if (!adv) throw std::runtime_error("serve client: bad Advice");
  return *adv;
}

AdviceMsg ServeClient::advise(std::uint64_t request_id,
                              std::uint64_t spec_hash, const JobParams& job) {
  // Matched by request id, not just type: a duplicate-delivered Advice
  // for an earlier id must be discarded, not returned as this answer.
  const auto adv = decode_advice(
      transact(encode_advise(AdviseMsg{request_id, spec_hash, job}),
               /*idempotent=*/true, [request_id](const std::string& reply) {
                 const auto a = decode_advice(reply);
                 return a && a->request_id == request_id;
               }));
  if (!adv) throw std::runtime_error("serve client: bad Advice");
  return *adv;
}

StatsReplyMsg ServeClient::stats() {
  const auto s = decode_stats_reply(transact(encode_stats(StatsMsg{}),
                                             /*idempotent=*/true,
                                             is_type(MsgType::kStatsReply)));
  if (!s) throw std::runtime_error("serve client: bad StatsReply");
  return *s;
}

}  // namespace redspot::serve
