#include "serve/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/batcher.hpp"
#include "common/check.hpp"
#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/transport/transport.hpp"
#include "serve/advisor.hpp"
#include "serve/proto.hpp"
#include "serve/registry.hpp"
#include "serve/shed.hpp"
#include "serve/tick_store.hpp"
#include "stats/latency.hpp"

namespace redspot::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct Conn {
  std::unique_ptr<transport::Stream> stream;
  FrameBuffer in;
  std::mutex write_mutex;
  std::atomic<bool> dead{false};
};

/// One queued advise request. request_id 0 with a null conn is a
/// tick-driven slide: it advances the shared model so the next real
/// request starts from a pre-slid state, and produces no response.
struct AdviseWork {
  std::shared_ptr<Conn> conn;
  std::uint64_t request_id = 0;
  JobParams job;
  Clock::time_point submitted;
};

class Server {
 public:
  explicit Server(const ServeOptions& options)
      : opt_(options),
        pool_(options.threads),
        registry_(options.registry_bytes),
        shed_(options.shed_queue_limit),
        batcher_(pool_, [this](const std::uint64_t& key,
                               std::vector<AdviseWork>&& batch) {
          run_batch(key, std::move(batch));
        }) {}

  int run() {
    if (opt_.install_signal_handlers) install_interrupt_handlers();
    const auto ep = transport::parse_endpoint(opt_.endpoint);
    if (!ep)
      throw std::runtime_error("redspot-serve: bad endpoint: " +
                               opt_.endpoint);
    listener_ = transport::listen(*ep);
    const std::string bound = listener_->local_endpoint().str();
    LOG_INFO << "redspot-serve: listening on " << bound;
    if (opt_.on_bound) opt_.on_bound(bound);

    while (!interrupt_requested()) {
      poll_once(/*timeout_ms=*/200);
    }
    return shutdown_drain();
  }

 private:
  // --- poll loop ------------------------------------------------------------

  void poll_once(int timeout_ms) {
    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 1);
    fds.push_back({listener_->fd(), POLLIN, 0});
    for (const auto& c : conns_) fds.push_back({c->stream->fd(), POLLIN, 0});
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) return;  // signal: loop re-checks the flag
      throw std::runtime_error("redspot-serve: poll failed");
    }

    if (fds[0].revents & POLLIN) {
      while (auto stream = listener_->accept()) {
        auto c = std::make_shared<Conn>();
        c->stream = std::move(stream);
        conns_.push_back(std::move(c));
        if (conns_.size() >= 4096) break;  // defensive fd cap
      }
    }

    for (std::size_t i = 0; i < conns_.size() && i + 1 < fds.size(); ++i) {
      if (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))
        service_conn(conns_[i]);
    }
    reap_dead();
  }

  void service_conn(const std::shared_ptr<Conn>& c) {
    try {
      if (!c->stream->read_into(c->in)) c->dead.store(true);
    } catch (const std::runtime_error&) {
      c->dead.store(true);
    }
    std::string frame;
    while (!c->dead.load() && c->in.next(&frame) == FrameStatus::kOk)
      dispatch(c, frame);
    if (c->in.corrupt()) c->dead.store(true);
  }

  void reap_dead() {
    std::erase_if(conns_,
                  [](const std::shared_ptr<Conn>& c) { return c->dead.load(); });
  }

  // --- message dispatch -----------------------------------------------------

  void dispatch(const std::shared_ptr<Conn>& c, std::string_view payload) {
    const std::optional<MsgType> type = msg_type(payload);
    if (!type) {
      send_error(c, 0, "unknown message type");
      return;
    }
    switch (*type) {
      case MsgType::kTraceInit:
        on_trace_init(c, payload);
        return;
      case MsgType::kTick:
        on_tick(c, payload);
        return;
      case MsgType::kRegister:
        on_register(c, payload);
        return;
      case MsgType::kAdvise:
        on_advise(c, payload);
        return;
      case MsgType::kStats:
        send_msg(c, encode_stats_reply(collect_stats()));
        return;
      default:
        send_error(c, 0, "unexpected message");
        return;
    }
  }

  void on_trace_init(const std::shared_ptr<Conn>& c, std::string_view payload) {
    const auto m = decode_trace_init(payload);
    if (!m) {
      c->dead.store(true);
      return;
    }
    if (m->protocol != kProtocolVersion) {
      send_error(c, 0, "protocol version mismatch");
      return;
    }
    if (store_) {
      send_error(c, 0, "trace already initialized");
      return;
    }
    try {
      std::vector<PriceSeries> series;
      series.reserve(m->samples.size());
      for (const std::vector<Money>& zone : m->samples)
        series.emplace_back(m->start, m->step, zone);
      ZoneTraceSet seed(m->zone_names, std::move(series));
      store_.emplace(std::move(seed),
                     static_cast<std::size_t>(m->capacity_samples));
    } catch (const std::exception& e) {
      send_error(c, 0, std::string("bad trace init: ") + e.what());
      return;
    }
    send_msg(c, encode_trace_ok(TraceOkMsg{store_->end_time()}));
  }

  void on_tick(const std::shared_ptr<Conn>& c, std::string_view payload) {
    const auto m = decode_tick(payload);
    if (!m) {
      c->dead.store(true);
      return;
    }
    if (!store_) {
      send_error(c, 0, "tick before trace init");
      return;
    }
    if (m->prices.size() != store_->num_zones()) {
      send_error(c, 0, "tick zone-count mismatch");
      return;
    }
    if (store_->size() >= store_->capacity_samples()) {
      send_error(c, 0, "tick capacity exhausted");
      return;
    }
    const SimTime end = store_->append(m->prices);
    send_msg(c, encode_tick_ack(TickAckMsg{end}));
    // Eager tick-driven slide: every registered model advances under its
    // batcher key, so advise requests land on pre-slid state. Coalesces
    // with (and orders before) any queued advises, by FIFO.
    std::unique_lock lock(specs_mutex_);
    for (const auto& [hash, spec] : specs_)
      batcher_.submit(hash, AdviseWork{nullptr, 0, JobParams{}, Clock::now()});
  }

  void on_register(const std::shared_ptr<Conn>& c, std::string_view payload) {
    const auto m = decode_register(payload);
    if (!m) {
      c->dead.store(true);
      return;
    }
    const ModelSpec& spec = m->spec;
    if (spec.history_span <= 0 || spec.bid_grid.empty() ||
        spec.max_states < 2 || spec.max_zones == 0 || spec.policies.empty()) {
      send_error(c, 0, "invalid model spec");
      return;
    }
    for (PolicyKind p : spec.policies) {
      if (p != PolicyKind::kPeriodic && p != PolicyKind::kMarkovDaly) {
        send_error(c, 0, "spec policies must be periodic/markov-daly");
        return;
      }
    }
    const std::uint64_t hash = spec.spec_hash();
    {
      std::unique_lock lock(specs_mutex_);
      specs_.emplace(hash, spec);
    }
    send_msg(c, encode_register_ok(RegisterOkMsg{hash}));
  }

  void on_advise(const std::shared_ptr<Conn>& c, std::string_view payload) {
    const auto m = decode_advise(payload);
    if (!m) {
      c->dead.store(true);
      return;
    }
    {
      std::unique_lock lock(specs_mutex_);
      if (!specs_.contains(m->spec_hash)) {
        lock.unlock();
        send_error(c, m->request_id, "unknown spec hash (register first)");
        return;
      }
    }
    if (!store_ || store_->size() < 2) {
      send_error(c, m->request_id, "insufficient price history");
      return;
    }
    // SLO gate: over the queue bound, answer from the last-good snapshot
    // (staleness marker set) or reject — never queue unboundedly.
    const ShedDecision shed =
        shed_.admit(m->spec_hash, m->job, batcher_.pending());
    switch (shed.kind) {
      case ShedDecision::Kind::kAccept:
        batcher_.submit(m->spec_hash,
                        AdviseWork{c, m->request_id, m->job, Clock::now()});
        return;
      case ShedDecision::Kind::kServeStale:
        send_msg(c, encode_advice(
                        AdviceMsg{m->request_id, shed.advice, /*stale=*/true}));
        return;
      case ShedDecision::Kind::kReject:
        send_error(c, m->request_id, "overloaded");
        return;
    }
  }

  // --- batch execution (pool threads) ---------------------------------------

  void run_batch(std::uint64_t key, std::vector<AdviseWork>&& batch) {
    ModelSpec spec;
    {
      std::unique_lock lock(specs_mutex_);
      const auto it = specs_.find(key);
      REDSPOT_CHECK(it != specs_.end());  // submit() verified registration
      spec = it->second;
    }
    store_->with_read([&](const ZoneTraceSet& traces) {
      // ONE model resolution for the whole batch — the coalescing payoff.
      const std::shared_ptr<ModelEntry> entry =
          registry_.acquire(spec, traces.num_zones());
      for (AdviseWork& work : batch) {
        if (work.conn == nullptr) {
          // Tick-driven slide: advance the shared state, no response. The
          // job parameters are irrelevant to the slide (the window is),
          // and the computed advice is discarded.
          if (traces.zone(0).size() >= 2)
            slide_entry(*entry, traces);
          continue;
        }
        try {
          const Advice advice = compute_advice(*entry, traces, work.job);
          // Remember the fresh answer before sending: if the daemon is
          // overloaded one poll cycle later, this exact advice is what a
          // shed request for the same (spec, job) receives.
          shed_.record(key, work.job, advice);
          send_msg(work.conn,
                   encode_advice(AdviceMsg{work.request_id, advice}));
        } catch (const std::exception& e) {
          send_error(work.conn, work.request_id,
                     std::string("advise failed: ") + e.what());
        }
        latency_.record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - work.submitted)
                .count()));
      }
    });
  }

  /// Advances the entry's history window and per-zone models to the
  /// current trace end without computing advice (the tick path). Same
  /// window arithmetic as compute_advice, so a later advise finds the
  /// state already slid; observe() is idempotent, so re-observing there
  /// stays bit-identical. Requires >= 2 samples (caller checks).
  static void slide_entry(ModelEntry& entry, const ZoneTraceSet& traces) {
    const SimTime now = traces.end() - traces.step();
    const SimTime from = now - entry.spec.history_span;
    if (!entry.hist) {
      entry.hist.emplace(traces, from, now, entry.spec.bid_grid);
    } else {
      entry.hist->advance(traces, from, now);
    }
    while (entry.zone_models.size() < traces.num_zones())
      entry.zone_models.emplace_back(entry.spec.max_states);
    for (std::size_t z = 0; z < traces.num_zones(); ++z)
      entry.zone_models[z].observe(traces.zone(z).view(from, now));
  }

  // --- responses ------------------------------------------------------------

  void send_msg(const std::shared_ptr<Conn>& c, const std::string& payload) {
    if (c->dead.load()) return;
    std::lock_guard lock(c->write_mutex);
    try {
      transport::send_frame(*c->stream, payload);
    } catch (const std::runtime_error&) {
      c->dead.store(true);  // peer gone; poll loop reaps
    }
  }

  void send_error(const std::shared_ptr<Conn>& c, std::uint64_t request_id,
                  std::string message) {
    send_msg(c, encode_error(ErrorMsg{request_id, std::move(message)}));
  }

  StatsReplyMsg collect_stats() {
    const BatcherStats b = batcher_.stats();
    const LruStats r = registry_.stats();
    const ShedStats s = shed_.stats();
    StatsReplyMsg m;
    m.ticks = store_ ? store_->ticks() : 0;
    m.advises = latency_.count();
    m.batches = b.batches;
    m.max_batch = b.max_batch;
    m.models = r.entries;
    m.model_bytes = r.bytes;
    m.evictions = r.evictions;
    m.shed_stale = s.shed_stale;
    m.shed_rejected = s.shed_rejected;
    m.queue_peak = s.queue_peak;
    m.advise_p50_ns = latency_.p50_ns();
    m.advise_p99_ns = latency_.p99_ns();
    return m;
  }

  // --- graceful shutdown ----------------------------------------------------

  /// Answers everything the clients managed to write before the signal,
  /// then drains and reports. Bounded sweep: each round polls every
  /// connection non-blockingly and services the readable ones; when a
  /// round finds nothing readable, the kernel buffers are empty.
  int shutdown_drain() {
    listener_.reset();
    for (int round = 0; round < 100; ++round) {
      if (conns_.empty()) break;
      std::vector<pollfd> fds;
      fds.reserve(conns_.size());
      for (const auto& c : conns_) fds.push_back({c->stream->fd(), POLLIN, 0});
      const int rc = ::poll(fds.data(), fds.size(), 0);
      if (rc <= 0) break;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
          service_conn(conns_[i]);
      }
      reap_dead();
    }
    batcher_.drain();
    const StatsReplyMsg s = collect_stats();
    if (opt_.print_stats) {
      std::printf(
          "redspot-serve: drained — ticks=%llu advises=%llu batches=%llu "
          "max_batch=%llu models=%llu model_mb=%.1f p50_us=%.1f p99_us=%.1f\n",
          static_cast<unsigned long long>(s.ticks),
          static_cast<unsigned long long>(s.advises),
          static_cast<unsigned long long>(s.batches),
          static_cast<unsigned long long>(s.max_batch),
          static_cast<unsigned long long>(s.models),
          static_cast<double>(s.model_bytes) / (1024.0 * 1024.0),
          s.advise_p50_ns / 1e3, s.advise_p99_ns / 1e3);
      if (s.shed_stale > 0 || s.shed_rejected > 0) {
        std::printf(
            "redspot-serve: shed — stale=%llu rejected=%llu queue_peak=%llu\n",
            static_cast<unsigned long long>(s.shed_stale),
            static_cast<unsigned long long>(s.shed_rejected),
            static_cast<unsigned long long>(s.queue_peak));
      }
      std::fflush(stdout);
    }
    conns_.clear();
    return 130;
  }

  ServeOptions opt_;
  std::unique_ptr<transport::Listener> listener_;
  std::vector<std::shared_ptr<Conn>> conns_;

  ThreadPool pool_;
  ModelRegistry registry_;
  std::optional<TickStore> store_;
  LatencyRecorder latency_;
  ShedGate shed_;

  std::mutex specs_mutex_;
  std::unordered_map<std::uint64_t, ModelSpec> specs_;

  Batcher<std::uint64_t, AdviseWork> batcher_;
};

}  // namespace

int run_server(const ServeOptions& options) {
  try {
    Server server(options);
    return server.run();
  } catch (const std::exception& e) {
    LOG_WARN << "redspot-serve: fatal: " << e.what();
    return 1;
  }
}

}  // namespace redspot::serve
