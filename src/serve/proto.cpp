#include "serve/proto.hpp"

#include <bit>

#include "common/frame.hpp"

namespace redspot::serve {

namespace {

/// Sanity bound on decoded list lengths: a forged count must be rejected
/// before it drives a giant allocation (the frame layer already caps the
/// payload at kMaxFramePayload, this keeps the check local and obvious).
constexpr std::uint64_t kMaxListLen = 1u << 22;

std::string header(MsgType t) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(t));
  return out;
}

/// Reader positioned after a verified type tag, or nullopt.
std::optional<ByteReader> open_msg(std::string_view payload, MsgType want) {
  ByteReader in(payload);
  std::uint32_t tag = 0;
  if (!in.u32(&tag) || tag != static_cast<std::uint32_t>(want))
    return std::nullopt;
  return in;
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

bool read_f64(ByteReader& in, double* v) {
  std::uint64_t bits = 0;
  if (!in.u64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

void put_money_list(std::string& out, const std::vector<Money>& v) {
  put_u64(out, v.size());
  for (Money m : v) put_i64(out, m.micros());
}

bool read_money_list(ByteReader& in, std::vector<Money>* out) {
  std::uint64_t n = 0;
  if (!in.u64(&n) || n > kMaxListLen) return false;
  out->clear();
  out->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t micros = 0;
    if (!in.i64(&micros)) return false;
    out->push_back(Money::from_micros(micros));
  }
  return true;
}

void put_spec(std::string& out, const ModelSpec& spec) {
  put_i64(out, spec.history_span);
  put_money_list(out, spec.bid_grid);
  put_u64(out, spec.max_states);
  put_u64(out, spec.max_zones);
  put_u64(out, spec.policies.size());
  for (PolicyKind p : spec.policies)
    put_u32(out, static_cast<std::uint32_t>(p));
  put_u64(out, spec.regime_fingerprint);
}

bool read_spec(ByteReader& in, ModelSpec* spec) {
  if (!in.i64(&spec->history_span)) return false;
  if (!read_money_list(in, &spec->bid_grid)) return false;
  std::uint64_t max_states = 0, max_zones = 0, npol = 0;
  if (!in.u64(&max_states) || !in.u64(&max_zones) || !in.u64(&npol) ||
      npol > 8)
    return false;
  spec->max_states = max_states;
  spec->max_zones = max_zones;
  spec->policies.clear();
  for (std::uint64_t i = 0; i < npol; ++i) {
    std::uint32_t p = 0;
    if (!in.u32(&p)) return false;
    spec->policies.push_back(static_cast<PolicyKind>(p));
  }
  if (!in.u64(&spec->regime_fingerprint)) return false;
  return true;
}

void put_job(std::string& out, const JobParams& job) {
  put_i64(out, job.remaining_compute);
  put_i64(out, job.remaining_time);
  put_i64(out, job.checkpoint_cost);
  put_i64(out, job.restart_cost);
  put_i64(out, job.mean_queue_delay);
  put_i64(out, job.on_demand_rate.micros());
}

bool read_job(ByteReader& in, JobParams* job) {
  std::int64_t rate = 0;
  if (!in.i64(&job->remaining_compute) || !in.i64(&job->remaining_time) ||
      !in.i64(&job->checkpoint_cost) || !in.i64(&job->restart_cost) ||
      !in.i64(&job->mean_queue_delay) || !in.i64(&rate))
    return false;
  job->on_demand_rate = Money::from_micros(rate);
  return true;
}

}  // namespace

std::optional<MsgType> msg_type(std::string_view payload) {
  ByteReader in(payload);
  std::uint32_t tag = 0;
  if (!in.u32(&tag)) return std::nullopt;
  switch (static_cast<MsgType>(tag)) {
    case MsgType::kTraceInit:
    case MsgType::kTraceOk:
    case MsgType::kTick:
    case MsgType::kTickAck:
    case MsgType::kRegister:
    case MsgType::kRegisterOk:
    case MsgType::kAdvise:
    case MsgType::kAdvice:
    case MsgType::kStats:
    case MsgType::kStatsReply:
    case MsgType::kError:
      return static_cast<MsgType>(tag);
  }
  return std::nullopt;
}

std::string encode_trace_init(const TraceInitMsg& m) {
  std::string out = header(MsgType::kTraceInit);
  put_u32(out, m.protocol);
  put_i64(out, m.start);
  put_i64(out, m.step);
  put_u64(out, m.zone_names.size());
  for (const std::string& name : m.zone_names) put_str(out, name);
  put_u64(out, m.samples.size());
  for (const std::vector<Money>& zone : m.samples) put_money_list(out, zone);
  put_u64(out, m.capacity_samples);
  return out;
}

std::optional<TraceInitMsg> decode_trace_init(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kTraceInit);
  if (!in) return std::nullopt;
  TraceInitMsg m;
  std::uint64_t zones = 0;
  if (!in->u32(&m.protocol) || !in->i64(&m.start) || !in->i64(&m.step) ||
      !in->u64(&zones) || zones > 64)
    return std::nullopt;
  m.zone_names.resize(zones);
  for (std::string& name : m.zone_names)
    if (!in->str(&name)) return std::nullopt;
  std::uint64_t series = 0;
  if (!in->u64(&series) || series != zones) return std::nullopt;
  m.samples.resize(series);
  for (std::vector<Money>& zone : m.samples)
    if (!read_money_list(*in, &zone)) return std::nullopt;
  if (!in->u64(&m.capacity_samples) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_trace_ok(const TraceOkMsg& m) {
  std::string out = header(MsgType::kTraceOk);
  put_i64(out, m.end);
  return out;
}

std::optional<TraceOkMsg> decode_trace_ok(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kTraceOk);
  if (!in) return std::nullopt;
  TraceOkMsg m;
  if (!in->i64(&m.end) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_tick(const TickMsg& m) {
  std::string out = header(MsgType::kTick);
  put_money_list(out, m.prices);
  return out;
}

std::optional<TickMsg> decode_tick(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kTick);
  if (!in) return std::nullopt;
  TickMsg m;
  if (!read_money_list(*in, &m.prices) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_tick_ack(const TickAckMsg& m) {
  std::string out = header(MsgType::kTickAck);
  put_i64(out, m.end);
  return out;
}

std::optional<TickAckMsg> decode_tick_ack(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kTickAck);
  if (!in) return std::nullopt;
  TickAckMsg m;
  if (!in->i64(&m.end) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_register(const RegisterMsg& m) {
  std::string out = header(MsgType::kRegister);
  put_spec(out, m.spec);
  return out;
}

std::optional<RegisterMsg> decode_register(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kRegister);
  if (!in) return std::nullopt;
  RegisterMsg m;
  if (!read_spec(*in, &m.spec) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_register_ok(const RegisterOkMsg& m) {
  std::string out = header(MsgType::kRegisterOk);
  put_u64(out, m.spec_hash);
  return out;
}

std::optional<RegisterOkMsg> decode_register_ok(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kRegisterOk);
  if (!in) return std::nullopt;
  RegisterOkMsg m;
  if (!in->u64(&m.spec_hash) || !in->done()) return std::nullopt;
  return m;
}

std::string encode_advise(const AdviseMsg& m) {
  std::string out = header(MsgType::kAdvise);
  put_u64(out, m.request_id);
  put_u64(out, m.spec_hash);
  put_job(out, m.job);
  return out;
}

std::optional<AdviseMsg> decode_advise(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kAdvise);
  if (!in) return std::nullopt;
  AdviseMsg m;
  if (!in->u64(&m.request_id) || !in->u64(&m.spec_hash) ||
      !read_job(*in, &m.job) || !in->done())
    return std::nullopt;
  return m;
}

std::string encode_advice(const AdviceMsg& m) {
  std::string out = header(MsgType::kAdvice);
  put_u64(out, m.request_id);
  put_i64(out, m.advice.as_of);
  put_i64(out, m.advice.bid.micros());
  put_u64(out, m.advice.zones.size());
  for (std::size_t z : m.advice.zones) put_u64(out, z);
  put_u32(out, static_cast<std::uint32_t>(m.advice.policy));
  put_i64(out, m.advice.predicted_cost.micros());
  put_i64(out, m.advice.expected_uptime);
  put_i64(out, m.advice.checkpoint_interval);
  put_u32(out, m.stale ? 1 : 0);
  return out;
}

std::optional<AdviceMsg> decode_advice(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kAdvice);
  if (!in) return std::nullopt;
  AdviceMsg m;
  std::int64_t bid = 0, cost = 0;
  std::uint64_t nzones = 0;
  if (!in->u64(&m.request_id) || !in->i64(&m.advice.as_of) ||
      !in->i64(&bid) || !in->u64(&nzones) || nzones > 64)
    return std::nullopt;
  m.advice.bid = Money::from_micros(bid);
  m.advice.zones.resize(nzones);
  for (std::size_t& z : m.advice.zones) {
    std::uint64_t v = 0;
    if (!in->u64(&v)) return std::nullopt;
    z = static_cast<std::size_t>(v);
  }
  std::uint32_t policy = 0, stale = 0;
  if (!in->u32(&policy) || !in->i64(&cost) ||
      !in->i64(&m.advice.expected_uptime) ||
      !in->i64(&m.advice.checkpoint_interval) || !in->u32(&stale) ||
      stale > 1 || !in->done())
    return std::nullopt;
  m.advice.policy = static_cast<PolicyKind>(policy);
  m.advice.predicted_cost = Money::from_micros(cost);
  m.stale = stale != 0;
  return m;
}

std::string encode_stats(const StatsMsg&) { return header(MsgType::kStats); }

std::optional<StatsMsg> decode_stats(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kStats);
  if (!in || !in->done()) return std::nullopt;
  return StatsMsg{};
}

std::string encode_stats_reply(const StatsReplyMsg& m) {
  std::string out = header(MsgType::kStatsReply);
  put_u64(out, m.ticks);
  put_u64(out, m.advises);
  put_u64(out, m.batches);
  put_u64(out, m.max_batch);
  put_u64(out, m.models);
  put_u64(out, m.model_bytes);
  put_u64(out, m.evictions);
  put_u64(out, m.shed_stale);
  put_u64(out, m.shed_rejected);
  put_u64(out, m.queue_peak);
  put_f64(out, m.advise_p50_ns);
  put_f64(out, m.advise_p99_ns);
  return out;
}

std::optional<StatsReplyMsg> decode_stats_reply(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kStatsReply);
  if (!in) return std::nullopt;
  StatsReplyMsg m;
  if (!in->u64(&m.ticks) || !in->u64(&m.advises) || !in->u64(&m.batches) ||
      !in->u64(&m.max_batch) || !in->u64(&m.models) ||
      !in->u64(&m.model_bytes) || !in->u64(&m.evictions) ||
      !in->u64(&m.shed_stale) || !in->u64(&m.shed_rejected) ||
      !in->u64(&m.queue_peak) || !read_f64(*in, &m.advise_p50_ns) ||
      !read_f64(*in, &m.advise_p99_ns) || !in->done())
    return std::nullopt;
  return m;
}

std::string encode_error(const ErrorMsg& m) {
  std::string out = header(MsgType::kError);
  put_u64(out, m.request_id);
  put_str(out, m.message);
  return out;
}

std::optional<ErrorMsg> decode_error(std::string_view payload) {
  auto in = open_msg(payload, MsgType::kError);
  if (!in) return std::nullopt;
  ErrorMsg m;
  if (!in->u64(&m.request_id) || !in->str(&m.message) || !in->done())
    return std::nullopt;
  return m;
}

}  // namespace redspot::serve
