#include "serve/shed.hpp"

#include "common/hash.hpp"

namespace redspot::serve {

namespace {

/// Bound on the last-good cache: one entry per distinct (spec, job) pair
/// seen. ~1000 tenants × a handful of job shapes fits easily; a runaway
/// cardinality (fuzzing, adversarial jobs) resets the cache rather than
/// growing without limit — losing stale answers is the cheap failure.
constexpr std::size_t kMaxEntries = 1u << 16;

}  // namespace

std::uint64_t ShedGate::key(std::uint64_t spec_hash, const JobParams& job) {
  HashStream h;
  h.u64(spec_hash);
  h.i64(job.remaining_compute);
  h.i64(job.remaining_time);
  h.i64(job.checkpoint_cost);
  h.i64(job.restart_cost);
  h.i64(job.mean_queue_delay);
  h.i64(job.on_demand_rate.micros());
  return h.digest();
}

ShedDecision ShedGate::admit(std::uint64_t spec_hash, const JobParams& job,
                             std::uint64_t queue_depth) {
  std::lock_guard lock(mutex_);
  if (queue_depth > stats_.queue_peak) stats_.queue_peak = queue_depth;
  if (limit_ == 0 || queue_depth < limit_) return {};
  const auto it = last_good_.find(key(spec_hash, job));
  if (it == last_good_.end()) {
    ++stats_.shed_rejected;
    return {ShedDecision::Kind::kReject, {}};
  }
  ++stats_.shed_stale;
  return {ShedDecision::Kind::kServeStale, it->second};
}

void ShedGate::record(std::uint64_t spec_hash, const JobParams& job,
                      const Advice& advice) {
  std::lock_guard lock(mutex_);
  if (last_good_.size() >= kMaxEntries) last_good_.clear();
  last_good_[key(spec_hash, job)] = advice;
}

ShedStats ShedGate::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace redspot::serve
