// Blocking request/response client for the serve protocol.
//
// Thin convenience over connect_unix + the proto codecs: each call sends
// one frame and blocks until the daemon's answer arrives (connections are
// blocking on the client side; the daemon replies in submission order per
// request class). Used by tick_replay, the integration tests and
// bench_serve — tenants wanting pipelining can hold several clients.
//
// Every method throws std::runtime_error on transport failure (daemon
// gone, frame corruption) and ServeError when the daemon answered with an
// Error message — the two failure classes the protocol distinguishes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/frame.hpp"
#include "serve/proto.hpp"

namespace redspot::serve {

/// The daemon declined the request (protocol-level Error message).
class ServeError : public std::runtime_error {
 public:
  ServeError(std::uint64_t request_id, const std::string& message)
      : std::runtime_error(message), request_id_(request_id) {}
  std::uint64_t request_id() const { return request_id_; }

 private:
  std::uint64_t request_id_ = 0;
};

class ServeClient {
 public:
  /// Connects to the daemon at `socket_path`, retrying for up to
  /// `connect_timeout_ms` while the socket does not exist yet (daemon
  /// still starting). Throws std::runtime_error on timeout.
  explicit ServeClient(const std::string& socket_path,
                       int connect_timeout_ms = 5000);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Seeds the daemon's trace store. Returns the trace end after seeding.
  SimTime trace_init(const TraceInitMsg& m);

  /// Appends one price sample per zone. Returns the new trace end.
  SimTime tick(const std::vector<Money>& prices);

  /// Registers a model spec (idempotent). Returns the spec hash to advise
  /// against.
  std::uint64_t register_spec(const ModelSpec& spec);

  /// Asks for advice for `job` against a registered spec. Blocks until the
  /// daemon answers this request id.
  AdviceMsg advise(std::uint64_t request_id, std::uint64_t spec_hash,
                   const JobParams& job);

  /// Fire-and-forget advise: sends the request without waiting. Pair with
  /// recv_advice() to collect responses (they arrive in per-spec
  /// submission order). Used to build up server-side batches.
  void advise_async(std::uint64_t request_id, std::uint64_t spec_hash,
                    const JobParams& job);

  /// Receives the next Advice response (throws ServeError on an Error
  /// response, std::runtime_error if the daemon hangs up first).
  AdviceMsg recv_advice();

  StatsReplyMsg stats();

 private:
  /// Sends one encoded payload as a frame.
  void send(const std::string& payload);
  /// Blocks until one complete frame arrives; returns its payload.
  /// Throws std::runtime_error on EOF/corruption.
  std::string recv_frame();
  /// recv_frame + Error interception: throws ServeError on MsgType::kError.
  std::string recv_ok();

  int fd_ = -1;
  FrameBuffer in_;
};

}  // namespace redspot::serve
