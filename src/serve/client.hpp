// Blocking request/response client for the serve protocol, with
// self-healing reconnects.
//
// Thin convenience over the transport layer + the proto codecs: each call
// sends one frame and blocks until the daemon's answer arrives
// (connections are blocking on the client side; the daemon replies in
// submission order per request class). Used by tick_replay, the
// integration tests and bench_serve — tenants wanting pipelining can hold
// several clients.
//
// Failure semantics distinguish three cases:
//
//   * The daemon is not reachable (ENOENT/ECONNREFUSED, or the connection
//     died and must be redialed): the client reconnects with capped
//     exponential backoff + jitter, up to connect_timeout_ms per request.
//   * The connection dropped mid-request. If the request is idempotent
//     (advise, register, stats — re-execution is harmless), the client
//     reconnects and resends, up to max_resends times. If it is NOT
//     (tick, trace_init — re-execution would double-apply), the client
//     throws ConnectionLost: the effect of the request is unknown and
//     only the caller can decide what to do.
//   * The daemon answered with a protocol-level Error message: ServeError.
//     The connection is fine; this is never retried.
//
// advise_async/recv_advice are raw pipelining primitives and do not
// retry — once requests are in flight their resend semantics belong to
// the caller.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/frame.hpp"
#include "common/random.hpp"
#include "common/transport/fault.hpp"
#include "common/transport/transport.hpp"
#include "serve/proto.hpp"

namespace redspot::serve {

/// The daemon declined the request (protocol-level Error message).
class ServeError : public std::runtime_error {
 public:
  ServeError(std::uint64_t request_id, const std::string& message)
      : std::runtime_error(message), request_id_(request_id) {}
  std::uint64_t request_id() const { return request_id_; }

 private:
  std::uint64_t request_id_ = 0;
};

/// The connection dropped after a non-idempotent request was (partly or
/// wholly) sent: the daemon may or may not have applied it, and resending
/// could double-apply. The caller decides how to recover.
class ConnectionLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServeClientOptions {
  /// "unix:PATH", "tcp:HOST:PORT", or a bare unix-socket path.
  std::string endpoint;
  /// Total budget for (re)connecting per request, including backoff
  /// sleeps, while the daemon is unreachable.
  int connect_timeout_ms = 5'000;
  /// How long to wait for a reply before declaring the connection dead. A
  /// partitioned daemon never EOFs — this deadline is the only way out.
  int reply_timeout_ms = 10'000;
  /// Resend budget for idempotent requests after a mid-request drop.
  int max_resends = 3;
  /// Optional seeded fault injector wrapping every connection the client
  /// makes (chaos tests). Null in production.
  transport::NetFaultInjector* net_fault = nullptr;
};

class ServeClient {
 public:
  /// Connects to the daemon, retrying with backoff for up to
  /// options.connect_timeout_ms. Throws std::runtime_error on timeout or
  /// a malformed endpoint.
  explicit ServeClient(ServeClientOptions options);

  /// Convenience: endpoint + connect timeout, defaults elsewhere.
  explicit ServeClient(const std::string& endpoint,
                       int connect_timeout_ms = 5'000);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Seeds the daemon's trace store. Returns the trace end after seeding.
  /// NOT idempotent: throws ConnectionLost on a mid-request drop.
  SimTime trace_init(const TraceInitMsg& m);

  /// Appends one price sample per zone. Returns the new trace end.
  /// NOT idempotent: throws ConnectionLost on a mid-request drop.
  SimTime tick(const std::vector<Money>& prices);

  /// Registers a model spec (idempotent — resent transparently). Returns
  /// the spec hash to advise against.
  std::uint64_t register_spec(const ModelSpec& spec);

  /// Asks for advice for `job` against a registered spec. Blocks until the
  /// daemon answers this request id. Idempotent — resent transparently.
  AdviceMsg advise(std::uint64_t request_id, std::uint64_t spec_hash,
                   const JobParams& job);

  /// Fire-and-forget advise: sends the request without waiting. Pair with
  /// recv_advice() to collect responses (they arrive in per-spec
  /// submission order). Raw: no reconnect/resend.
  void advise_async(std::uint64_t request_id, std::uint64_t spec_hash,
                    const JobParams& job);

  /// Receives the next Advice response (throws ServeError on an Error
  /// response, std::runtime_error if the daemon hangs up first). Raw: no
  /// reconnect/resend.
  AdviceMsg recv_advice();

  /// Idempotent — resent transparently.
  StatsReplyMsg stats();

  /// True when a received frame is the reply to the in-flight request;
  /// false frames (duplicate-delivered replies to earlier requests) are
  /// discarded.
  using ReplyMatcher = std::function<bool(const std::string&)>;

 private:
  /// Dials the daemon if not connected, with backoff, until the connect
  /// deadline. Throws std::runtime_error on timeout.
  void ensure_connected();
  /// Drops the current connection and its buffered bytes.
  void drop_connection();
  /// Sends `payload` and returns the first reply frame `matches` accepts,
  /// discarding stale (duplicate-delivered) replies. Reconnects/resends
  /// per the idempotency contract above.
  std::string transact(const std::string& payload, bool idempotent,
                       const ReplyMatcher& matches);
  /// Sends one encoded payload as a frame on the live connection.
  void send(const std::string& payload);
  /// Blocks until one complete frame arrives (bounded by
  /// reply_timeout_ms); returns its payload. Throws std::runtime_error on
  /// EOF/corruption/timeout.
  std::string recv_frame();
  /// Throws ServeError if `payload` is an Error message.
  static std::string check_ok(std::string payload);

  ServeClientOptions opt_;
  transport::Endpoint endpoint_;
  std::unique_ptr<transport::Stream> stream_;
  FrameBuffer in_;
  Rng rng_;  ///< backoff jitter only; never affects results
};

}  // namespace redspot::serve
