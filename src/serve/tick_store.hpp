// Live trace storage for the serve daemon.
//
// One growing ZoneTraceSet shared by every model: the ingest path appends
// one aligned sample per zone per tick (single writer), and advise batches
// read the traces on pool threads (many readers). A std::shared_mutex
// separates the two; because the storage is pre-reserved for the
// configured capacity, an append within capacity never moves the samples,
// so the borrowed-storage incremental paths (HistoryStats,
// IncrementalMarkovModel) stay incremental across the whole run — see
// PriceSeries::reserve_total.
//
// Reads happen under with_read(): the lock covers the whole advise batch,
// so every answer in a batch sees one coherent trace end (its as_of
// stamp). Appends past the reserved capacity are rejected (the daemon has
// a configured horizon, not an unbounded heap).
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/money.hpp"
#include "common/time.hpp"
#include "trace/zone_traces.hpp"

namespace redspot::serve {

class TickStore {
 public:
  /// Seeds the store with the bootstrap history (the serve protocol's
  /// TraceInit) and reserves room for `capacity_samples` total samples per
  /// zone. Requires capacity >= the seed length.
  TickStore(ZoneTraceSet seed, std::size_t capacity_samples);

  /// Appends one sample per zone, effective at the current end(). Returns
  /// the new end time. Throws CheckFailure when the reserved capacity is
  /// exhausted or the zone count mismatches. Single writer.
  SimTime append(const std::vector<Money>& prices);

  /// Runs `fn(traces)` under the shared (reader) lock.
  template <typename Fn>
  auto with_read(Fn&& fn) const {
    std::shared_lock lock(mutex_);
    return fn(traces_);
  }

  std::size_t num_zones() const;
  std::size_t capacity_samples() const { return capacity_; }
  /// Samples currently held per zone.
  std::size_t size() const;
  SimTime end_time() const;
  std::uint64_t ticks() const;

 private:
  mutable std::shared_mutex mutex_;
  ZoneTraceSet traces_;
  std::size_t capacity_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace redspot::serve
