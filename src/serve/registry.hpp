// Shared-model registry: spec-hash keyed, LRU byte-accounted.
//
// Tenants registering equal ModelSpecs share one ModelEntry — that is the
// whole point of the daemon (1000 tenants, a handful of models). The
// registry is the serve instantiation of common/lru.hpp, the same core
// EnsembleCache uses, with one difference: entries are MUTABLE (advise
// batches slide their models), so exclusivity comes from the request
// batcher's per-key serialization, not from const-ness. The shared_ptr
// ownership rule still applies — an entry evicted under memory pressure
// while a batch holds it stays alive until the batch finishes; the next
// request for that spec rebuilds from the live trace (correctness is
// unaffected: the advice is a pure function of trace + spec + job).
#pragma once

#include <cstdint>
#include <memory>

#include "common/lru.hpp"
#include "serve/advisor.hpp"

namespace redspot::serve {

class ModelRegistry {
 public:
  /// Default capacity: plenty for the expected "few shared models", small
  /// enough that a misbehaving tenant fleet registering thousands of
  /// distinct specs evicts instead of exhausting the host.
  static constexpr std::size_t kDefaultCapacityBytes = 64u << 20;

  explicit ModelRegistry(std::size_t capacity_bytes = kDefaultCapacityBytes)
      : core_(capacity_bytes) {}

  /// The entry for `spec`, created on first use. `num_zones` feeds the
  /// byte estimate. The returned pointer is valid for as long as the
  /// caller holds it, eviction notwithstanding.
  std::shared_ptr<ModelEntry> acquire(const ModelSpec& spec,
                                      std::size_t num_zones) {
    return core_.lookup_or_create(
        spec.spec_hash(),
        [&] { return std::make_shared<ModelEntry>(spec); },
        [&](const ModelEntry& e) { return e.spec.approx_bytes(num_zones); });
  }

  /// The entry for a previously registered spec hash, or nullptr if it
  /// was never registered or has been evicted.
  std::shared_ptr<ModelEntry> find(std::uint64_t spec_hash) {
    return core_.lookup(spec_hash);
  }

  void set_capacity_bytes(std::size_t bytes) {
    core_.set_capacity_bytes(bytes);
  }
  LruStats stats() const { return core_.stats(); }

 private:
  LruByteCache<std::uint64_t, ModelEntry> core_;
};

}  // namespace redspot::serve
