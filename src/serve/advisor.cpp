#include "serve/advisor.hpp"

#include "ckpt/daly.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/adaptive/estimator.hpp"

namespace redspot::serve {

std::uint64_t ModelSpec::spec_hash() const {
  HashStream h;
  h.str("serve-model-spec-v1");
  h.i64(history_span);
  h.u64(bid_grid.size());
  for (Money b : bid_grid) h.i64(b.micros());
  h.u64(max_states);
  h.u64(max_zones);
  h.u64(policies.size());
  for (PolicyKind p : policies) h.u64(static_cast<std::uint64_t>(p));
  h.u64(regime_fingerprint);
  return h.digest();
}

std::size_t ModelSpec::approx_bytes(std::size_t num_zones) const {
  // Steady-state footprint, dominated by the per-zone Markov state (n x n
  // transition counts + atomic memo slots) and HistoryStats' per-(zone,
  // bid) counters; the window-sized fit buffers only materialize in
  // quantile-binned mode but are charged anyway (capacity planning wants
  // the ceiling, not the floor).
  const std::size_t window_samples = static_cast<std::size_t>(
      history_span / kPriceStep);
  const std::size_t per_zone_markov =
      max_states * max_states * (8 + 8 + 4) + window_samples * 2 * 8;
  const std::size_t per_zone_hist = bid_grid.size() * 96;
  return sizeof(ModelEntry) +
         num_zones * (per_zone_markov + per_zone_hist + 512);
}

namespace {

EstimatorInputs make_inputs(const ZoneTraceSet& traces, SimTime now,
                            const JobParams& job) {
  EstimatorInputs in;
  in.remaining_compute = job.remaining_compute;
  in.remaining_time = job.remaining_time;
  in.checkpoint_cost = job.checkpoint_cost;
  in.restart_cost = job.restart_cost;
  in.mean_queue_delay = job.mean_queue_delay;
  in.on_demand_rate = job.on_demand_rate;
  in.current_prices.reserve(traces.num_zones());
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    in.current_prices.push_back(traces.zone(z).at(now).to_double());
  return in;
}

}  // namespace

Advice compute_advice(ModelEntry& entry, const ZoneTraceSet& traces,
                      const JobParams& job) {
  // Decision time mirrors the engine exactly: when the tick effective at T
  // arrives, the engine reconsiders at now = T with the trailing history
  // [T - span, T) — the new sample is the "current price", not yet part of
  // the history window.
  REDSPOT_CHECK(!traces.zone(0).empty());
  const SimTime now = traces.end() - traces.step();
  const SimTime from = now - entry.spec.history_span;
  if (!entry.hist) {
    entry.hist.emplace(traces, from, now, entry.spec.bid_grid);
  } else {
    entry.hist->advance(traces, from, now);
  }

  const EstimatorInputs in = make_inputs(traces, now, job);
  const std::vector<PermutationEstimate> ranked = evaluate_permutations(
      *entry.hist, entry.spec.max_zones, entry.spec.policies, in);
  REDSPOT_CHECK(!ranked.empty());
  const PermutationEstimate& best = ranked.front();

  Advice adv;
  adv.as_of = now;
  adv.bid = best.bid;
  adv.zones = best.zones;
  adv.policy = best.policy;
  adv.predicted_cost = best.predicted_cost;

  // Markov-Daly execution knobs for the chosen permutation, computed the
  // way MarkovDalyPolicy::schedule_next_checkpoint computes them: per-zone
  // expected up-time at the current price under the adopted bid, summed
  // over the zones that would run.
  while (entry.zone_models.size() < traces.num_zones())
    entry.zone_models.emplace_back(entry.spec.max_states);
  Duration uptime = 0;
  for (std::size_t zone : adv.zones) {
    IncrementalMarkovModel& model = entry.zone_models[zone];
    model.observe(traces.zone(zone).view(from, now));
    uptime += model.expected_uptime(traces.zone(zone).at(now), adv.bid);
  }
  adv.expected_uptime = uptime;
  if (adv.policy == PolicyKind::kMarkovDaly && uptime > 0)
    adv.checkpoint_interval = daly_interval(job.checkpoint_cost, uptime);

  ++entry.advises;
  return adv;
}

Advice advise_offline(const ModelSpec& spec, const ZoneTraceSet& traces,
                      const JobParams& job) {
  ModelEntry fresh(spec);
  return compute_advice(fresh, traces, job);
}

}  // namespace redspot::serve
