// Serve wire protocol: typed messages over the shared frame codec.
//
// Same transport discipline as the fabric (fabric/wire.hpp): every message
// is one CRC32 frame (common/frame.hpp) whose payload starts with a u32
// type tag; decoders are total, and a malformed payload drops the
// connection. Two traffic classes share one socket:
//
//   feed -> daemon:    TraceInit (bootstrap history), Tick (one sample per
//                      zone) — answered with TraceOk / TickAck.
//   tenant -> daemon:  Register (a ModelSpec; idempotent, returns the
//                      spec hash used as the advise key), Advise (job
//                      parameters + spec hash) — answered with RegisterOk /
//                      Advice. Stats returns the daemon's counters.
//
// Any request the daemon cannot honor is answered with Error carrying the
// request id (0 when the request had none) and a message; the connection
// stays up — a tenant asking about an unknown spec is a client bug, not a
// transport failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/advisor.hpp"

namespace redspot::serve {

/// Bumped on any incompatible change; mismatches are protocol errors.
/// v2: Advice carries a staleness marker (SLO-aware load shedding),
/// StatsReply carries shed/queue-depth counters.
inline constexpr std::uint32_t kProtocolVersion = 2;

enum class MsgType : std::uint32_t {
  kTraceInit = 1,
  kTraceOk = 2,
  kTick = 3,
  kTickAck = 4,
  kRegister = 5,
  kRegisterOk = 6,
  kAdvise = 7,
  kAdvice = 8,
  kStats = 9,
  kStatsReply = 10,
  kError = 11,
};

/// Type tag of a message payload, or nullopt if too short / unknown.
std::optional<MsgType> msg_type(std::string_view payload);

/// Bootstrap: the price history the models start from, plus the total
/// per-zone sample capacity the daemon must reserve (ticks beyond it are
/// rejected). Exactly one TraceInit per daemon lifetime.
struct TraceInitMsg {
  std::uint32_t protocol = kProtocolVersion;
  SimTime start = 0;
  Duration step = kPriceStep;
  std::vector<std::string> zone_names;
  /// samples[z] is zone z's seed history; all zones equal length >= 1.
  std::vector<std::vector<Money>> samples;
  std::uint64_t capacity_samples = 0;
};

struct TraceOkMsg {
  SimTime end = 0;  ///< trace end after seeding
};

/// One price sample per zone, effective at the current trace end.
struct TickMsg {
  std::vector<Money> prices;
};

struct TickAckMsg {
  SimTime end = 0;  ///< trace end after the append
};

struct RegisterMsg {
  ModelSpec spec;
};

struct RegisterOkMsg {
  std::uint64_t spec_hash = 0;
};

struct AdviseMsg {
  std::uint64_t request_id = 0;
  std::uint64_t spec_hash = 0;
  JobParams job;
};

struct AdviceMsg {
  std::uint64_t request_id = 0;
  Advice advice;
  /// SLO degradation marker: true when the daemon was overloaded and
  /// answered from the last-good model snapshot instead of computing
  /// fresh. advice.as_of then names the snapshot the answer is exact for.
  bool stale = false;
};

struct StatsMsg {};

struct StatsReplyMsg {
  std::uint64_t ticks = 0;
  std::uint64_t advises = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t models = 0;
  std::uint64_t model_bytes = 0;
  std::uint64_t evictions = 0;
  /// Load-shedding counters: requests answered stale from the last-good
  /// snapshot, requests rejected outright (no snapshot to serve), and the
  /// highest batcher queue depth observed.
  std::uint64_t shed_stale = 0;
  std::uint64_t shed_rejected = 0;
  std::uint64_t queue_peak = 0;
  double advise_p50_ns = 0.0;
  double advise_p99_ns = 0.0;
};

struct ErrorMsg {
  std::uint64_t request_id = 0;  ///< 0 when the request had none
  std::string message;
};

std::string encode_trace_init(const TraceInitMsg& m);
std::string encode_trace_ok(const TraceOkMsg& m);
std::string encode_tick(const TickMsg& m);
std::string encode_tick_ack(const TickAckMsg& m);
std::string encode_register(const RegisterMsg& m);
std::string encode_register_ok(const RegisterOkMsg& m);
std::string encode_advise(const AdviseMsg& m);
std::string encode_advice(const AdviceMsg& m);
std::string encode_stats(const StatsMsg& m);
std::string encode_stats_reply(const StatsReplyMsg& m);
std::string encode_error(const ErrorMsg& m);

std::optional<TraceInitMsg> decode_trace_init(std::string_view payload);
std::optional<TraceOkMsg> decode_trace_ok(std::string_view payload);
std::optional<TickMsg> decode_tick(std::string_view payload);
std::optional<TickAckMsg> decode_tick_ack(std::string_view payload);
std::optional<RegisterMsg> decode_register(std::string_view payload);
std::optional<RegisterOkMsg> decode_register_ok(std::string_view payload);
std::optional<AdviseMsg> decode_advise(std::string_view payload);
std::optional<AdviceMsg> decode_advice(std::string_view payload);
std::optional<StatsMsg> decode_stats(std::string_view payload);
std::optional<StatsReplyMsg> decode_stats_reply(std::string_view payload);
std::optional<ErrorMsg> decode_error(std::string_view payload);

}  // namespace redspot::serve
