// LeaseTable policy, driven entirely on a fake millisecond clock — the
// coordinator's shard-ownership rules with no sockets anywhere. Pins the
// lease-expiry edge cases the fabric's recovery story depends on:
// a worker that dies after sending a partial but before the ack, a
// duplicate partial arriving after reassignment, and a lease expiring on
// the exact heartbeat boundary. Also covers the journal warm-up hooks
// (mark_done / record_attempt) a restarted coordinator uses, and the
// shared backoff_delay the worker's reconnect loop borrows from the
// fault module.
#include <gtest/gtest.h>

#include "fabric/lease.hpp"
#include "fault/fault_plan.hpp"

namespace redspot::fabric {
namespace {

LeaseConfig config(std::int64_t lease_ms = 10'000, std::int64_t hb_ms = 2'000,
                   std::uint64_t per_lease = 1) {
  LeaseConfig c;
  c.lease_duration_ms = lease_ms;
  c.heartbeat_timeout_ms = hb_ms;
  c.shards_per_lease = per_lease;
  return c;
}

TEST(LeaseTable, GrantsShardsInOrderOneLeasePerWorker) {
  LeaseTable t(4, config());
  const auto w1 = t.add_worker(0);
  const auto w2 = t.add_worker(0);

  const auto g1 = t.grant(w1, 0);
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->shard_lo, 0u);
  EXPECT_EQ(g1->shard_hi, 1u);
  EXPECT_EQ(g1->attempt, 1u);

  // w1 already holds a lease: no second grant until it completes.
  EXPECT_FALSE(t.grant(w1, 0).has_value());

  const auto g2 = t.grant(w2, 0);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->shard_lo, 1u);

  // Completion frees the worker for the next shard.
  EXPECT_EQ(t.complete(g1->shard_lo, 1), LeaseTable::Partial::kAccepted);
  const auto g3 = t.grant(w1, 1);
  ASSERT_TRUE(g3.has_value());
  EXPECT_EQ(g3->shard_lo, 2u);
}

TEST(LeaseTable, RangeLeases) {
  LeaseTable t(5, config(10'000, 2'000, /*per_lease=*/3));
  const auto w = t.add_worker(0);
  const auto g = t.grant(w, 0);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->shard_lo, 0u);
  EXPECT_EQ(g->shard_hi, 3u);
  // The lease is held until every shard in the range is done.
  EXPECT_EQ(t.complete(0, 1), LeaseTable::Partial::kAccepted);
  EXPECT_EQ(t.complete(1, 1), LeaseTable::Partial::kAccepted);
  EXPECT_FALSE(t.grant(w, 1).has_value());
  EXPECT_EQ(t.complete(2, 1), LeaseTable::Partial::kAccepted);
  const auto g2 = t.grant(w, 1);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->shard_lo, 3u);
  EXPECT_EQ(g2->shard_hi, 5u);
}

// Edge case 1: the worker delivers its partial and dies before the ack
// reaches it. The shard is done — the later death must not resurrect it.
TEST(LeaseTable, WorkerDiesAfterPartialBeforeAck) {
  LeaseTable t(2, config());
  const auto w = t.add_worker(0);
  const auto g = t.grant(w, 0);
  ASSERT_TRUE(g.has_value());

  // Partial arrives and is accepted...
  EXPECT_EQ(t.complete(g->shard_lo, 100), LeaseTable::Partial::kAccepted);
  EXPECT_EQ(t.done_count(), 1u);

  // ...then the connection drops before the ack could be read.
  t.remove_worker(w, 101);
  EXPECT_EQ(t.done_count(), 1u);

  // The dead worker's shard is NOT re-granted; only shard 1 remains.
  const auto w2 = t.add_worker(102);
  const auto g2 = t.grant(w2, 102);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->shard_lo, 1u);
  EXPECT_EQ(t.complete(1, 103), LeaseTable::Partial::kAccepted);
  EXPECT_TRUE(t.all_done());
}

// Edge case 2: a lease expires, the shard is reassigned and completed by
// the new owner — then the original (slow, not dead) worker's partial for
// the same shard finally lands. It must dedupe, not double-fold.
TEST(LeaseTable, DuplicatePartialAfterReassignmentDedupes) {
  LeaseTable t(1, config(/*lease_ms=*/1'000, /*hb_ms=*/600'000));
  const auto slow = t.add_worker(0);
  const auto g1 = t.grant(slow, 0);
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->attempt, 1u);

  // Lease expires at t=1000; the shard returns to the pool.
  const auto expired = t.tick(1'000);
  EXPECT_EQ(expired.reclaimed_shards, 1u);

  // Reassigned to a second worker — attempt counter advances.
  const auto fast = t.add_worker(1'000);
  const auto g2 = t.grant(fast, 1'000);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->shard_lo, g1->shard_lo);
  EXPECT_EQ(g2->attempt, 2u);

  // New owner completes first; the stale partial then arrives.
  EXPECT_EQ(t.complete(g2->shard_lo, 1'500), LeaseTable::Partial::kAccepted);
  EXPECT_EQ(t.complete(g1->shard_lo, 1'600), LeaseTable::Partial::kDuplicate);
  EXPECT_EQ(t.done_count(), 1u);
  EXPECT_TRUE(t.all_done());
}

// The mirror interleaving: the ORIGINAL owner finishes first (its result
// is accepted even though its lease expired — work is work), and the
// reassigned worker's copy dedupes.
TEST(LeaseTable, ExpiredLeasePartialStillCounts) {
  LeaseTable t(1, config(1'000, 600'000));
  const auto slow = t.add_worker(0);
  const auto g1 = t.grant(slow, 0);
  ASSERT_TRUE(g1.has_value());
  t.tick(1'000);
  const auto fast = t.add_worker(1'000);
  const auto g2 = t.grant(fast, 1'000);
  ASSERT_TRUE(g2.has_value());

  EXPECT_EQ(t.complete(g1->shard_lo, 1'200), LeaseTable::Partial::kAccepted);
  EXPECT_EQ(t.complete(g2->shard_lo, 1'300), LeaseTable::Partial::kDuplicate);
  EXPECT_EQ(t.done_count(), 1u);
}

// Edge case 3: expiry on the exact boundary. A lease granted at t with
// duration D is dead at exactly t + D — and one millisecond earlier it
// is still alive. Same convention for the heartbeat timeout.
TEST(LeaseTable, LeaseExpiresOnExactBoundary) {
  LeaseTable t(1, config(/*lease_ms=*/1'000, /*hb_ms=*/600'000));
  const auto w = t.add_worker(0);
  ASSERT_TRUE(t.grant(w, 0).has_value());

  // t + D - 1: still live.
  auto e = t.tick(999);
  EXPECT_EQ(e.reclaimed_shards, 0u);
  // t + D exactly: expired.
  e = t.tick(1'000);
  EXPECT_EQ(e.reclaimed_shards, 1u);
}

TEST(LeaseTable, HeartbeatTimeoutOnExactBoundary) {
  LeaseTable t(1, config(/*lease_ms=*/600'000, /*hb_ms=*/2'000));
  const auto w = t.add_worker(0);
  ASSERT_TRUE(t.grant(w, 0).has_value());

  // Heartbeat at t=1500 pushes the deadline to 3500.
  t.touch(w, 1'500);
  auto e = t.tick(3'499);
  EXPECT_TRUE(e.dead_workers.empty());
  EXPECT_TRUE(t.has_worker(w));

  e = t.tick(3'500);
  ASSERT_EQ(e.dead_workers.size(), 1u);
  EXPECT_EQ(e.dead_workers[0], w);
  EXPECT_EQ(e.reclaimed_shards, 1u);
  EXPECT_FALSE(t.has_worker(w));

  // The reclaimed shard is re-grantable with a bumped attempt.
  const auto w2 = t.add_worker(3'500);
  const auto g = t.grant(w2, 3'500);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->attempt, 2u);
}

TEST(LeaseTable, NextDeadlineTracksEarliestEvent) {
  LeaseTable t(2, config(/*lease_ms=*/5'000, /*hb_ms=*/2'000));
  EXPECT_FALSE(t.next_deadline(0).has_value());

  const auto w = t.add_worker(0);
  // No lease yet: the worker's heartbeat deadline dominates.
  ASSERT_TRUE(t.next_deadline(0).has_value());
  EXPECT_EQ(*t.next_deadline(0), 2'000);

  ASSERT_TRUE(t.grant(w, 0).has_value());
  // Lease expiry (5000) is later than the heartbeat deadline (2000).
  EXPECT_EQ(*t.next_deadline(0), 2'000);
  t.touch(w, 4'500);
  // Heartbeat refreshed: lease expiry now comes first.
  EXPECT_EQ(*t.next_deadline(4'500), 5'000);
  // A deadline already in the past clamps to "now" (poll timeout 0).
  EXPECT_EQ(*t.next_deadline(6'000), 6'000);
}

TEST(LeaseTable, JournalWarmupRestoresDoneAndAttempts) {
  LeaseTable t(4, config());
  // A restarted coordinator replays: shards 0 and 2 done, shard 1 was
  // granted twice before the crash.
  t.mark_done(0);
  t.mark_done(2);
  t.mark_done(2);  // idempotent
  t.record_attempt(1, 2);
  t.record_attempt(1, 1);  // stale lower attempt never regresses

  EXPECT_EQ(t.done_count(), 2u);
  EXPECT_EQ(t.attempts(1), 2u);

  const auto w = t.add_worker(0);
  const auto g = t.grant(w, 0);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->shard_lo, 1u);
  EXPECT_EQ(g->attempt, 3u);  // continues the journaled sequence

  EXPECT_EQ(t.complete(1, 1), LeaseTable::Partial::kAccepted);
  const auto g2 = t.grant(w, 1);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->shard_lo, 3u);
  EXPECT_EQ(t.complete(3, 2), LeaseTable::Partial::kAccepted);
  EXPECT_TRUE(t.all_done());
}

TEST(LeaseTable, OutOfRangePartialIsInvalid) {
  LeaseTable t(2, config());
  EXPECT_EQ(t.complete(2, 0), LeaseTable::Partial::kInvalid);
  EXPECT_EQ(t.complete(~0ULL, 0), LeaseTable::Partial::kInvalid);
  EXPECT_EQ(t.done_count(), 0u);
}

// --- the shared reconnect backoff ------------------------------------------

TEST(BackoffDelay, DoublesAndCaps) {
  const BackoffPolicy policy{/*base=*/100, /*cap=*/2'000, /*jitter=*/0.0};
  EXPECT_EQ(backoff_delay(policy, 1, 0.0), 100);
  EXPECT_EQ(backoff_delay(policy, 2, 0.0), 200);
  EXPECT_EQ(backoff_delay(policy, 3, 0.0), 400);
  EXPECT_EQ(backoff_delay(policy, 5, 0.0), 1'600);
  EXPECT_EQ(backoff_delay(policy, 6, 0.0), 2'000);   // capped
  EXPECT_EQ(backoff_delay(policy, 60, 0.0), 2'000);  // stays capped
}

TEST(BackoffDelay, JitterStretchesUpToFraction) {
  const BackoffPolicy policy{/*base=*/100, /*cap=*/2'000, /*jitter=*/0.5};
  EXPECT_EQ(backoff_delay(policy, 1, 0.0), 100);
  // Full draw stretches by the whole jitter fraction.
  EXPECT_EQ(backoff_delay(policy, 1, 0.999999), 149);
  // Jitter applies after the cap (desynchronizing capped retries too).
  EXPECT_GE(backoff_delay(policy, 10, 0.999999), 2'000);
}

}  // namespace
}  // namespace redspot::fabric
