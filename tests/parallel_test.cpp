// Tests for the ThreadPool / parallel_for layer: index coverage, the fixed
// shard partition contract, shutdown semantics, and a submit/wait_idle
// stress test meant to run under ThreadSanitizer (see ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace redspot {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    ThreadPool pool(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(pool, 0, n,
                   [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
    }
  }
}

TEST(ParallelForTest, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(25);
  parallel_for(pool, 10, 25, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 25; ++i)
    EXPECT_EQ(hits[i].load(), i >= 10 ? 1 : 0) << "i=" << i;
}

TEST(ParallelForTest, FewerIndicesThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, 0, 3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, DefaultPoolOverload) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(hits[i].load(), 1);
}

using ShardBounds = std::vector<std::tuple<std::size_t, std::size_t>>;

ShardBounds collect_bounds(ThreadPool& pool, std::size_t n,
                           std::size_t num_shards) {
  ShardBounds bounds(num_shards);
  std::mutex m;
  parallel_for_shards(pool, n, num_shards,
                      [&](std::size_t s, std::size_t lo, std::size_t hi) {
                        std::lock_guard<std::mutex> lock(m);
                        bounds[s] = {lo, hi};
                      });
  return bounds;
}

TEST(ParallelForShardsTest, ShardsAreContiguousDisjointAndCoverRange) {
  ThreadPool pool(4);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{103}, std::size_t{1000}}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{7},
                               std::size_t{16}, std::size_t{200}}) {
      const ShardBounds bounds = collect_bounds(pool, n, shards);
      std::size_t next = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [lo, hi] = bounds[s];
        ASSERT_LE(lo, hi) << "n=" << n << " shards=" << shards << " s=" << s;
        ASSERT_EQ(lo, next) << "n=" << n << " shards=" << shards << " s=" << s;
        next = hi;
      }
      ASSERT_EQ(next, n) << "n=" << n << " shards=" << shards;
    }
  }
}

TEST(ParallelForShardsTest, TrailingShardsEmptyWhenMoreShardsThanIndices) {
  ThreadPool pool(2);
  const ShardBounds bounds = collect_bounds(pool, 3, 8);
  std::size_t nonempty = 0;
  for (const auto& [lo, hi] : bounds) nonempty += (hi > lo) ? 1 : 0;
  EXPECT_EQ(nonempty, 3u);  // ceil(3/8) = 1 index per non-empty shard
}

TEST(ParallelForShardsTest, BoundariesIndependentOfPoolSize) {
  ThreadPool serial(1);
  ThreadPool wide(6);
  for (std::size_t n : {std::size_t{17}, std::size_t{64}, std::size_t{999}}) {
    for (std::size_t shards : {std::size_t{4}, std::size_t{64}}) {
      EXPECT_EQ(collect_bounds(serial, n, shards),
                collect_bounds(wide, n, shards))
          << "n=" << n << " shards=" << shards;
    }
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);  // shutdown drains, never drops
  EXPECT_THROW(pool.submit([] {}), CheckFailure);
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), CheckFailure);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmitted) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

// Stress test: several producer threads hammer submit() while others call
// wait_idle() concurrently. Primarily a ThreadSanitizer target; the
// functional assertion is that no task is lost or double-run.
TEST(ThreadPoolTest, StressConcurrentSubmitAndWaitIdle) {
  ThreadPool pool(4);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kTasksPerProducer = 500;
  std::atomic<std::size_t> ran{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      for (std::size_t t = 0; t < kTasksPerProducer; ++t) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        if (t % 64 == 0) pool.wait_idle();
      }
    });
  }
  for (std::size_t i = 0; i < 8; ++i) pool.wait_idle();
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolTest, HardwareConcurrencyFallback) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace redspot
