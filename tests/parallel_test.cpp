// Tests for the ThreadPool / parallel_for layer: index coverage, the fixed
// shard partition contract, shutdown semantics, and a submit/wait_idle
// stress test meant to run under ThreadSanitizer (see ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace redspot {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    ThreadPool pool(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(pool, 0, n,
                   [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
    }
  }
}

TEST(ParallelForTest, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(25);
  parallel_for(pool, 10, 25, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 25; ++i)
    EXPECT_EQ(hits[i].load(), i >= 10 ? 1 : 0) << "i=" << i;
}

TEST(ParallelForTest, FewerIndicesThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, 0, 3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, DefaultPoolOverload) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(hits[i].load(), 1);
}

using ShardBounds = std::vector<std::tuple<std::size_t, std::size_t>>;

ShardBounds collect_bounds(ThreadPool& pool, std::size_t n,
                           std::size_t num_shards) {
  ShardBounds bounds(num_shards);
  std::mutex m;
  parallel_for_shards(pool, n, num_shards,
                      [&](std::size_t s, std::size_t lo, std::size_t hi) {
                        std::lock_guard<std::mutex> lock(m);
                        bounds[s] = {lo, hi};
                      });
  return bounds;
}

TEST(ParallelForShardsTest, ShardsAreContiguousDisjointAndCoverRange) {
  ThreadPool pool(4);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{103}, std::size_t{1000}}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{7},
                               std::size_t{16}, std::size_t{200}}) {
      const ShardBounds bounds = collect_bounds(pool, n, shards);
      std::size_t next = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [lo, hi] = bounds[s];
        ASSERT_LE(lo, hi) << "n=" << n << " shards=" << shards << " s=" << s;
        ASSERT_EQ(lo, next) << "n=" << n << " shards=" << shards << " s=" << s;
        next = hi;
      }
      ASSERT_EQ(next, n) << "n=" << n << " shards=" << shards;
    }
  }
}

TEST(ParallelForShardsTest, TrailingShardsEmptyWhenMoreShardsThanIndices) {
  ThreadPool pool(2);
  const ShardBounds bounds = collect_bounds(pool, 3, 8);
  std::size_t nonempty = 0;
  for (const auto& [lo, hi] : bounds) nonempty += (hi > lo) ? 1 : 0;
  EXPECT_EQ(nonempty, 3u);  // ceil(3/8) = 1 index per non-empty shard
}

TEST(ParallelForShardsTest, BoundariesIndependentOfPoolSize) {
  ThreadPool serial(1);
  ThreadPool wide(6);
  for (std::size_t n : {std::size_t{17}, std::size_t{64}, std::size_t{999}}) {
    for (std::size_t shards : {std::size_t{4}, std::size_t{64}}) {
      EXPECT_EQ(collect_bounds(serial, n, shards),
                collect_bounds(wide, n, shards))
          << "n=" << n << " shards=" << shards;
    }
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);  // shutdown drains, never drops
  EXPECT_THROW(pool.submit([] {}), CheckFailure);
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), CheckFailure);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmitted) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

// Stress test: several producer threads hammer submit() while others call
// wait_idle() concurrently. Primarily a ThreadSanitizer target; the
// functional assertion is that no task is lost or double-run.
TEST(ThreadPoolTest, StressConcurrentSubmitAndWaitIdle) {
  ThreadPool pool(4);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kTasksPerProducer = 500;
  std::atomic<std::size_t> ran{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      for (std::size_t t = 0; t < kTasksPerProducer; ++t) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        if (t % 64 == 0) pool.wait_idle();
      }
    });
  }
  for (std::size_t i = 0; i < 8; ++i) pool.wait_idle();
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolTest, HardwareConcurrencyFallback) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForShardsTest, ShardBoundsMatchesDispatchedBounds) {
  ThreadPool pool(3);
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                        std::size_t{1000}}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{8},
                               std::size_t{64}}) {
      const ShardBounds bounds = collect_bounds(pool, n, shards);
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(shard_bounds(n, shards, s),
                  (std::pair{std::get<0>(bounds[s]), std::get<1>(bounds[s])}))
            << "n=" << n << " shards=" << shards << " s=" << s;
      }
    }
  }
  EXPECT_THROW(shard_bounds(10, 0, 0), CheckFailure);
  EXPECT_THROW(shard_bounds(10, 4, 4), CheckFailure);
}

// --- exception policy ------------------------------------------------------

TEST(ThreadPoolTest, WaitIdleRethrowsTaskExceptionAndPoolStaysUsable) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // The error was consumed: the pool keeps working and a clean wait_idle
  // does not rethrow stale state.
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, FirstTaskExceptionWinsOthersDrain) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int t = 0; t < 50; ++t) {
    pool.submit([&ran, t] {
      ran.fetch_add(1);
      if (t % 10 == 3) throw std::runtime_error("boom " + std::to_string(t));
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 50);  // queued tasks still drained after the failure
}

TEST(ParallelForTest, BodyExceptionBecomesParallelErrorWithIndexContext) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    try {
      parallel_for(pool, 0, 100, [](std::size_t i) {
        if (i == 37) throw std::runtime_error("bad cell");
      });
      FAIL() << "expected ParallelError (threads=" << threads << ")";
    } catch (const ParallelError& e) {
      EXPECT_NE(std::string(e.what()).find("index 37"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("bad cell"), std::string::npos)
          << e.what();
    }
    // The pool survives: a failing sweep must not poison the next one.
    std::vector<std::atomic<int>> hits(10);
    parallel_for(pool, 0, 10, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < 10; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

// --- shard retry budget ----------------------------------------------------

TEST(ParallelForShardsTest, RetryBudgetRecoversTransientFailure) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> attempts(8);
    std::vector<std::atomic<int>> completed(8);
    ShardRunOptions options;
    options.retry_budget = 1;
    parallel_for_shards(
        pool, 64, 8,
        [&](std::size_t s, std::size_t, std::size_t) {
          // Idempotent body: reset this shard's output on entry.
          completed[s].store(0);
          if (attempts[s].fetch_add(1) == 0 && s == 5)
            throw std::runtime_error("transient");
          completed[s].store(1);
        },
        options);
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_EQ(completed[s].load(), 1) << "s=" << s;
      EXPECT_EQ(attempts[s].load(), s == 5 ? 2 : 1) << "s=" << s;
    }
  }
}

TEST(ParallelForShardsTest, ExhaustedRetryBudgetThrowsOneContextualError) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::atomic<int> attempts{0};
    ShardRunOptions options;
    options.retry_budget = 2;
    try {
      parallel_for_shards(
          pool, 24, 3,
          [&](std::size_t s, std::size_t, std::size_t) {
            if (s == 1) {
              attempts.fetch_add(1);
              throw std::runtime_error("persistent fault");
            }
          },
          options);
      FAIL() << "expected ParallelError (threads=" << threads << ")";
    } catch (const ParallelError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
      EXPECT_NE(what.find("[8, 16)"), std::string::npos) << what;
      EXPECT_NE(what.find("3 attempt(s)"), std::string::npos) << what;
      EXPECT_NE(what.find("persistent fault"), std::string::npos) << what;
    }
    EXPECT_EQ(attempts.load(), 3);  // budget 2 => exactly 3 attempts
  }
}

// --- graceful stop ---------------------------------------------------------

TEST(ParallelForShardsTest, StopFlagPreventsNewShardsFromBeingClaimed) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> ran{0};
    ShardRunOptions options;
    options.stop = &stop;
    parallel_for_shards(
        pool, 256, 64,
        [&](std::size_t, std::size_t, std::size_t) {
          // Trip the stop inside the first shards: everything not yet
          // claimed must stay unclaimed, without any error.
          ran.fetch_add(1);
          stop.store(true, std::memory_order_release);
        },
        options);
    EXPECT_GE(ran.load(), 1u);
    EXPECT_LE(ran.load(), pool.size());
  }
}

TEST(ParallelForShardsTest, UnsetStopFlagRunsEverything) {
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ran{0};
  ShardRunOptions options;
  options.stop = &stop;
  parallel_for_shards(
      pool, 64, 16,
      [&](std::size_t, std::size_t, std::size_t) { ran.fetch_add(1); },
      options);
  EXPECT_EQ(ran.load(), 16u);
}

}  // namespace
}  // namespace redspot
