// Tests for the Monte-Carlo ensemble subsystem: counter-based seeding,
// streaming estimators vs. their batch counterparts (property tests),
// trace trimming, thread-count invariance of EnsembleRunner, the result
// cache, and min-group semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "ensemble/cache.hpp"
#include "ensemble/runner.hpp"
#include "ensemble/seeder.hpp"
#include "ensemble/streaming.hpp"
#include "exp/scenario.hpp"
#include "stats/descriptive.hpp"
#include "stats/streaming.hpp"
#include "trace/synthetic.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {
namespace {

// ---------------------------------------------------------------- seeding --

TEST(ReplicationSeederTest, PureFunctionOfInputs) {
  const ReplicationSeeder a(42);
  const ReplicationSeeder b(42);
  for (std::uint64_t r : {0ULL, 1ULL, 999ULL, 1'000'000ULL}) {
    for (SeedDomain d :
         {SeedDomain::kTrace, SeedDomain::kQueueDelay, SeedDomain::kBootstrap}) {
      EXPECT_EQ(a.seed(r, d), b.seed(r, d));
    }
  }
}

TEST(ReplicationSeederTest, DistinctAcrossReplicationsDomainsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL}) {
    const ReplicationSeeder s(base);
    for (std::uint64_t r = 0; r < 200; ++r) {
      for (SeedDomain d : {SeedDomain::kTrace, SeedDomain::kQueueDelay,
                           SeedDomain::kBootstrap}) {
        seen.insert(s.seed(r, d));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 200u * 3u);  // no collisions in this range
}

// --------------------------------------------- streaming vs. batch (props) --

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, /*stream=*/17);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.lognormal(0.0, 0.5);
  return xs;
}

TEST(StreamingSummaryTest, ExactForFewerThanFiveSamples) {
  StreamingSummary s;
  const double xs[] = {3.0, 1.0, 2.0};
  for (std::uint64_t i = 0; i < 3; ++i) s.add(i, xs[i]);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(StreamingSummaryTest, SinglePassMatchesBatchDescriptive) {
  const std::vector<double> xs = lognormal_sample(4000, 99);
  StreamingSummary s({.bootstrap_replicates = 100, .ci_level = 0.95,
                      .bootstrap_seed = 7});
  for (std::size_t i = 0; i < xs.size(); ++i)
    s.add(static_cast<std::uint64_t>(i), xs[i]);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9 * std::abs(mean(xs)));
  EXPECT_NEAR(s.variance(), variance(xs), 1e-9 * variance(xs));
  EXPECT_DOUBLE_EQ(s.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(s.max(), max_of(xs));
  // P² is approximate; for 4000 lognormal(0, 0.5) samples the estimate
  // stays within a few percent of the exact sample quantile.
  const double spread = quantile(xs, 0.75) - quantile(xs, 0.25);
  EXPECT_NEAR(s.q1(), quantile(xs, 0.25), 0.10 * spread);
  EXPECT_NEAR(s.median(), quantile(xs, 0.5), 0.10 * spread);
  EXPECT_NEAR(s.q3(), quantile(xs, 0.75), 0.10 * spread);

  const auto [lo, hi] = s.mean_ci();
  EXPECT_LT(lo, hi);
  EXPECT_LT(lo, s.mean());
  EXPECT_GT(hi, s.mean());
}

TEST(StreamingSummaryTest, MergedShardsMatchBatchOverUnion) {
  const std::vector<double> xs = lognormal_sample(3000, 1234);
  const StreamingSummaryOptions options{.bootstrap_replicates = 80,
                                        .ci_level = 0.95,
                                        .bootstrap_seed = 11};
  // Uneven split into 7 shards, each accumulated in index order, merged in
  // shard order — exactly the runner's reduction shape.
  const std::size_t cuts[] = {0, 100, 101, 900, 901, 1500, 2999, 3000};
  StreamingSummary merged(options);
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    StreamingSummary shard(options);
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i)
      shard.add(static_cast<std::uint64_t>(i), xs[i]);
    merged.merge(shard);
  }

  EXPECT_EQ(merged.count(), xs.size());
  EXPECT_NEAR(merged.mean(), mean(xs), 1e-9 * std::abs(mean(xs)));
  EXPECT_NEAR(merged.variance(), variance(xs), 1e-9 * variance(xs));
  EXPECT_DOUBLE_EQ(merged.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(merged.max(), max_of(xs));
  const double spread = quantile(xs, 0.75) - quantile(xs, 0.25);
  EXPECT_NEAR(merged.q1(), quantile(xs, 0.25), 0.15 * spread);
  EXPECT_NEAR(merged.median(), quantile(xs, 0.5), 0.15 * spread);
  EXPECT_NEAR(merged.q3(), quantile(xs, 0.75), 0.15 * spread);
}

TEST(StreamingSummaryTest, MergeIsDeterministic) {
  const std::vector<double> xs = lognormal_sample(500, 5);
  const StreamingSummaryOptions options{.bootstrap_replicates = 40,
                                        .ci_level = 0.95,
                                        .bootstrap_seed = 3};
  auto build = [&] {
    StreamingSummary total(options);
    for (std::size_t lo : {std::size_t{0}, std::size_t{250}}) {
      StreamingSummary shard(options);
      for (std::size_t i = lo; i < lo + 250; ++i)
        shard.add(static_cast<std::uint64_t>(i), xs[i]);
      total.merge(shard);
    }
    return total;
  };
  const StreamingSummary a = build();
  const StreamingSummary b = build();
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.q1(), b.q1());
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.q3(), b.q3());
  EXPECT_EQ(a.mean_ci(), b.mean_ci());
}

TEST(StreamingSummaryTest, MergeRejectsMismatchedEstimators) {
  StreamingSummary a({.bootstrap_replicates = 10});
  StreamingSummary b({.bootstrap_replicates = 20});
  EXPECT_THROW(a.merge(b), CheckFailure);
}

TEST(P2QuantileTest, TracksBatchQuantileOnSkewedData) {
  const std::vector<double> xs = lognormal_sample(5000, 77);
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    P2Quantile est(q);
    for (double x : xs) est.add(x);
    const double exact = quantile(xs, q);
    const double spread = quantile(xs, 0.9) - quantile(xs, 0.1);
    EXPECT_NEAR(est.value(), exact, 0.05 * spread) << "q=" << q;
  }
}

TEST(PoissonBootstrapTest, WeightsArePureFunctionsOfSeedIndexReplicate) {
  const std::vector<double> xs = lognormal_sample(400, 21);
  auto run = [&](bool reversed) {
    PoissonBootstrap boot(50, /*seed=*/9);
    if (reversed) {
      for (std::size_t i = xs.size(); i-- > 0;)
        boot.add(static_cast<std::uint64_t>(i), xs[i]);
    } else {
      for (std::size_t i = 0; i < xs.size(); ++i)
        boot.add(static_cast<std::uint64_t>(i), xs[i]);
    }
    return boot.mean_ci(0.95, mean(xs));
  };
  const auto forward = run(false);
  const auto backward = run(true);
  // Same weights either way; only the floating-point summation order
  // differs, so the CIs agree to rounding.
  EXPECT_NEAR(forward.first, backward.first, 1e-9);
  EXPECT_NEAR(forward.second, backward.second, 1e-9);
  EXPECT_EQ(run(false), run(false));  // identical order → identical bits
}

TEST(PoissonBootstrapTest, CiBracketsTheMeanAndNarrowsWithN) {
  auto half_width = [](std::size_t n) {
    const std::vector<double> xs = lognormal_sample(n, 31);
    PoissonBootstrap boot(200, 4);
    for (std::size_t i = 0; i < xs.size(); ++i)
      boot.add(static_cast<std::uint64_t>(i), xs[i]);
    const auto [lo, hi] = boot.mean_ci(0.95, mean(xs));
    EXPECT_LT(lo, mean(xs));
    EXPECT_GT(hi, mean(xs));
    return hi - lo;
  };
  EXPECT_GT(half_width(100), half_width(6400));
}

TEST(WilsonIntervalTest, KnownValues) {
  EXPECT_EQ(wilson_interval(0, 0, 0.95), (std::pair<double, double>{0, 0}));
  const auto none = wilson_interval(0, 50, 0.95);
  EXPECT_NEAR(none.first, 0.0, 1e-12);
  EXPECT_GT(none.second, 0.0);   // zero observed misses != zero risk
  EXPECT_LT(none.second, 0.10);
  const auto all = wilson_interval(50, 50, 0.95);
  EXPECT_NEAR(all.second, 1.0, 1e-12);
  EXPECT_LT(all.first, 1.0);
  const auto half = wilson_interval(25, 50, 0.95);
  EXPECT_LT(half.first, 0.5);
  EXPECT_GT(half.second, 0.5);
}

TEST(ProbitTest, MatchesTabulatedNormalQuantiles) {
  EXPECT_NEAR(probit(0.5), 0.0, 1e-9);
  EXPECT_NEAR(probit(0.975), 1.9599639845, 1e-6);
  EXPECT_NEAR(probit(0.025), -1.9599639845, 1e-6);
  EXPECT_NEAR(probit(0.99), 2.3263478740, 1e-6);
}

// ---------------------------------------------------------- trace trimming --

TEST(TrimmedSpecTest, PrefixBitIdenticalToFullTrace) {
  const SyntheticTraceSpec full_spec = paper_trace_spec(7);
  const SimTime keep = window_end(VolatilityWindow::kHigh);
  const ZoneTraceSet full = generate_traces(full_spec);
  const ZoneTraceSet trimmed = generate_traces(trimmed_spec(full_spec, keep));

  ASSERT_EQ(trimmed.num_zones(), full.num_zones());
  ASSERT_GE(trimmed.end(), keep);
  ASSERT_LT(trimmed.end(), full.end());
  for (std::size_t z = 0; z < full.num_zones(); ++z) {
    for (SimTime t = 0; t < keep; t += 6 * kHour) {
      ASSERT_TRUE(full.price(z, t) == trimmed.price(z, t))
          << "zone " << z << " t=" << t;
    }
  }
}

TEST(TrimmedSpecTest, RejectsSpanBeyondSpec) {
  const SyntheticTraceSpec spec = paper_trace_spec(7);
  EXPECT_THROW(trimmed_spec(spec, 500 * kDay), CheckFailure);  // span ~425d
  EXPECT_THROW(trimmed_spec(spec, 0), CheckFailure);
}

// --------------------------------------------------------- EnsembleRunner --

EnsembleSpec small_spec() {
  EnsembleSpec spec;
  spec.window = VolatilityWindow::kHigh;
  spec.slack_fraction = 0.15;
  spec.checkpoint_cost = 300;
  spec.seed = 123;
  spec.replications = 24;
  spec.num_shards = 8;
  spec.bootstrap_replicates = 50;
  spec.use_cache = false;
  EnsembleConfig periodic;
  periodic.policy = PolicyKind::kPeriodic;
  periodic.zones = {0};
  EnsembleConfig threshold;
  threshold.policy = PolicyKind::kThreshold;
  threshold.zones = {1};
  spec.configs = {periodic, threshold};
  spec.min_groups.push_back({"best of 2", {0, 1}});
  return spec;
}

TEST(EnsembleRunnerTest, SummaryIsBitIdenticalAcrossThreadCounts) {
  const EnsembleRunner runner(small_spec());
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool hw(0);
  const EnsembleResult r1 = runner.run(one);
  const EnsembleResult r2 = runner.run(two);
  const EnsembleResult rh = runner.run(hw);

  const std::string t1 = r1.table("invariance");
  EXPECT_EQ(t1, r2.table("invariance"));
  EXPECT_EQ(t1, rh.table("invariance"));

  ASSERT_EQ(r1.configs.size(), r2.configs.size());
  for (std::size_t c = 0; c < r1.configs.size(); ++c) {
    const StreamingSummary& a = r1.configs[c].cost();
    const StreamingSummary& b = r2.configs[c].cost();
    // Bitwise, not approximate: the determinism contract.
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.q1(), b.q1());
    EXPECT_EQ(a.median(), b.median());
    EXPECT_EQ(a.q3(), b.q3());
    EXPECT_EQ(a.mean_ci(), b.mean_ci());
    EXPECT_EQ(r1.configs[c].deadline_misses(), r2.configs[c].deadline_misses());
    EXPECT_EQ(r1.configs[c].restarts().mean(), r2.configs[c].restarts().mean());
  }
}

TEST(EnsembleRunnerTest, FoldsEveryReplicationAndMeetsDeadlines) {
  const EnsembleSpec spec = small_spec();
  const EnsembleResult r = EnsembleRunner(spec).run();
  ASSERT_EQ(r.configs.size(), 2u);
  ASSERT_EQ(r.groups.size(), 1u);
  for (const ConfigSummary& c : r.configs) {
    EXPECT_EQ(c.count(), spec.replications);
    // The engine's on-demand fallback guarantees the deadline in every
    // fault-free replication.
    EXPECT_EQ(c.deadline_misses(), 0u);
    EXPECT_EQ(c.incomplete(), 0u);
    EXPECT_GT(c.cost().mean(), 0.0);
  }
}

TEST(EnsembleRunnerTest, MinGroupIsPerReplicationMinimum) {
  const EnsembleResult r = EnsembleRunner(small_spec()).run();
  const ConfigSummary& best = r.groups[0];
  EXPECT_EQ(best.count(), r.configs[0].count());
  for (const ConfigSummary& member : r.configs) {
    EXPECT_LE(best.cost().mean(), member.cost().mean() + 1e-9);
    EXPECT_LE(best.cost().min(), member.cost().min() + 1e-9);
  }
}

TEST(EnsembleRunnerTest, CacheHitReturnsIdenticalResult) {
  EnsembleSpec spec = small_spec();
  spec.use_cache = true;
  spec.seed = 777;
  spec.replications = 8;
  spec.num_shards = 4;
  EnsembleCache::global().clear();

  const EnsembleRunner runner(spec);
  const EnsembleResult first = runner.run();
  EXPECT_FALSE(first.from_cache);
  const EnsembleResult second = runner.run();
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.table("t"), second.table("t"));

  const EnsembleCache::Stats stats = EnsembleCache::global().stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GE(stats.entries, 1u);
  EnsembleCache::global().clear();
  EXPECT_EQ(EnsembleCache::global().stats().entries, 0u);
}

TEST(EnsembleSpecTest, HashCoversResultAffectingFieldsOnly) {
  const EnsembleSpec base = small_spec();
  EXPECT_EQ(base.spec_hash(), small_spec().spec_hash());

  EnsembleSpec s = small_spec();
  s.use_cache = !s.use_cache;
  EXPECT_EQ(base.spec_hash(), s.spec_hash());  // not result-affecting

  s = small_spec();
  s.seed = 124;
  EXPECT_NE(base.spec_hash(), s.spec_hash());
  s = small_spec();
  s.replications = 25;
  EXPECT_NE(base.spec_hash(), s.spec_hash());
  s = small_spec();
  s.configs[0].bid = Money::cents(101);
  EXPECT_NE(base.spec_hash(), s.spec_hash());
  s = small_spec();
  s.min_groups[0].members = {0};
  EXPECT_NE(base.spec_hash(), s.spec_hash());
}

TEST(EnsembleSpecTest, ValidateRejectsMalformedSpecs) {
  EnsembleSpec s = small_spec();
  s.configs.clear();
  EXPECT_THROW(s.validate(), CheckFailure);

  s = small_spec();
  s.replications = 0;
  EXPECT_THROW(s.validate(), CheckFailure);

  s = small_spec();
  s.min_groups[0].members = {0, 5};  // out of range
  EXPECT_THROW(s.validate(), CheckFailure);
}

TEST(EnsembleConfigTest, LabelsAreDerivedOrExplicit) {
  EnsembleConfig c;
  c.policy = PolicyKind::kPeriodic;
  c.zones = {0, 1, 2};
  EXPECT_FALSE(c.display_label().empty());
  c.label = "custom";
  EXPECT_EQ(c.display_label(), "custom");
}

// ------------------------------------------------------------- LRU cache --

/// A small same-sized result for byte-accounting tests.
EnsembleResult cache_filler() {
  EnsembleResult r;
  r.configs.emplace_back("filler",
                         StreamingSummaryOptions{50, 0.95, 1});
  return r;
}

/// Restores the global cache to its default state on scope exit so these
/// tests cannot leak a tiny capacity into the other cache tests.
struct CacheGuard {
  ~CacheGuard() {
    EnsembleCache::global().set_capacity_bytes(
        EnsembleCache::kDefaultCapacityBytes);
    EnsembleCache::global().clear();
  }
};

TEST(EnsembleCacheTest, ByteAccountingTracksStoresAndClear) {
  CacheGuard guard;
  EnsembleCache& cache = EnsembleCache::global();
  cache.clear();
  cache.store(1, cache_filler());
  const std::size_t per_entry = cache.stats().bytes;
  EXPECT_GT(per_entry, 0u);
  cache.store(2, cache_filler());
  cache.store(3, cache_filler());
  EXPECT_EQ(cache.stats().bytes, 3 * per_entry);
  EXPECT_EQ(cache.stats().entries, 3u);
  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EnsembleCacheTest, EvictsLeastRecentlyUsedWhenOverCapacity) {
  CacheGuard guard;
  EnsembleCache& cache = EnsembleCache::global();
  cache.clear();
  cache.store(1, cache_filler());
  const std::size_t per_entry = cache.stats().bytes;

  // Room for exactly two entries: storing a third evicts the oldest.
  cache.set_capacity_bytes(2 * per_entry);
  cache.store(2, cache_filler());
  cache.store(3, cache_filler());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(1), nullptr);  // the LRU victim
  EXPECT_NE(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);

  // A hit refreshes recency: touch 2, store 4 — now 3 is the victim.
  ASSERT_NE(cache.lookup(2), nullptr);
  cache.store(4, cache_filler());
  EXPECT_EQ(cache.lookup(3), nullptr);
  EXPECT_NE(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(4), nullptr);
}

TEST(EnsembleCacheTest, ShrinkingCapacityEvictsImmediately) {
  CacheGuard guard;
  EnsembleCache& cache = EnsembleCache::global();
  cache.clear();
  cache.store(1, cache_filler());
  cache.store(2, cache_filler());
  EXPECT_EQ(cache.stats().entries, 2u);
  // Capacity zero disables retention: everything evicts, stores included.
  cache.set_capacity_bytes(0);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  cache.store(3, cache_filler());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.lookup(3), nullptr);
}

TEST(EnsembleCacheTest, EvictedEntrySharedPtrStaysValid) {
  CacheGuard guard;
  EnsembleCache& cache = EnsembleCache::global();
  cache.clear();
  cache.store(1, cache_filler());
  const auto held = cache.lookup(1);
  ASSERT_NE(held, nullptr);
  cache.set_capacity_bytes(0);  // evict everything
  EXPECT_EQ(cache.lookup(1), nullptr);
  // The caller's shared ownership outlives the eviction.
  EXPECT_EQ(held->configs[0].label(), "filler");
}

}  // namespace
}  // namespace redspot
