// Cross-module integration and property tests: every policy on the
// calibrated synthetic market must complete, meet its deadline, bill
// consistently and behave deterministically — across volatility windows,
// bids, redundancy degrees, checkpoint costs and seeds (parameterized
// sweeps).
#include <gtest/gtest.h>

#include <tuple>

#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "core/policies/large_bid.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "market/spot_market.hpp"
#include "test_util.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

const SpotMarket& shared_market() {
  static const SpotMarket market(paper_traces(42), cc2_instance(),
                                 QueueDelayModel());
  return market;
}

// --- Property sweep: every (window, policy, bid, N) combination ----------------

using SweepParam =
    std::tuple<VolatilityWindow, PolicyKind, int /*bid cents*/, int /*N*/>;

class PolicySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolicySweep, CompletesOnTimeWithConsistentBilling) {
  const auto [window, policy, bid_cents, n] = GetParam();
  const Scenario scenario{window, 0.15, 300, 80};
  std::vector<std::size_t> zones;
  for (int z = 0; z < n; ++z) zones.push_back(static_cast<std::size_t>(z));

  // Three representative chunks, not all 80 (kept fast).
  for (std::size_t chunk : {std::size_t{5}, std::size_t{40},
                            std::size_t{70}}) {
    const Experiment e = scenario.experiment(chunk);
    EngineOptions options;
    options.record_line_items = true;
    const RunResult r =
        testing::run_fixed(shared_market(), e, policy,
                           Money::cents(bid_cents), zones, options);

    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.met_deadline);
    EXPECT_LE(r.finish_time, e.deadline_time());

    // Billing consistency: items sum to totals; spot + od = total.
    Money sum;
    for (const LineItem& item : r.line_items) sum += item.amount;
    EXPECT_EQ(sum, r.total_cost);
    EXPECT_EQ(r.spot_cost + r.on_demand_cost, r.total_cost);
    EXPECT_GE(r.total_cost, Money());

    // Sanity ceiling: a deadline-guaranteed run can never exceed the
    // worst case of "whole run on-demand plus every slack hour paid at
    // the bid across all zones".
    const Money ceiling =
        Money::dollars(2.40) * ((e.deadline + kHour) / kHour) +
        (Money::cents(bid_cents) * ((e.deadline + kHour) / kHour)) *
            static_cast<std::int64_t>(zones.size());
    EXPECT_LE(r.total_cost, ceiling);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& param) {
  std::string name =
      std::get<0>(param.param) == VolatilityWindow::kLow ? "low" : "high";
  // Appended piecewise (no "_" + ... chain) to dodge a GCC 12 -Wrestrict
  // false positive in the inlined operator+(const char*, string&&).
  name += "_";
  name += to_string(std::get<1>(param.param));
  name += "_b";
  name += std::to_string(std::get<2>(param.param));
  name += "_n";
  name += std::to_string(std::get<3>(param.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesBidsZones, PolicySweep,
    ::testing::Combine(
        ::testing::Values(VolatilityWindow::kLow, VolatilityWindow::kHigh),
        ::testing::Values(PolicyKind::kPeriodic, PolicyKind::kMarkovDaly,
                          PolicyKind::kRisingEdge, PolicyKind::kThreshold),
        ::testing::Values(27, 81, 240),
        ::testing::Values(1, 2, 3)),
    sweep_name);

// --- Property sweep: checkpoint costs ----------------------------------------------

class CkptCostSweep : public ::testing::TestWithParam<int> {};

TEST_P(CkptCostSweep, DeadlineHeldAtEveryCheckpointCost) {
  const Duration tc = GetParam();
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, tc, 80};
  for (std::size_t chunk : {std::size_t{10}, std::size_t{60}}) {
    const RunResult r = testing::run_fixed(
        shared_market(), scenario.experiment(chunk),
        PolicyKind::kPeriodic, Money::cents(81), {0, 1, 2});
    EXPECT_TRUE(r.met_deadline) << "tc=" << tc << " chunk=" << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Costs, CkptCostSweep,
                         ::testing::Values(60, 300, 600, 900, 1500));

// --- Property sweep: slack values ----------------------------------------------------

class SlackSweep : public ::testing::TestWithParam<double> {};

TEST_P(SlackSweep, DeadlineHeldAtEverySlack) {
  const double slack = GetParam();
  const Scenario scenario{VolatilityWindow::kHigh, slack, 300, 80};
  const RunResult r = testing::run_fixed(
      shared_market(), scenario.experiment(30), PolicyKind::kMarkovDaly,
      Money::cents(81), {1});
  EXPECT_TRUE(r.met_deadline) << "slack=" << slack;
  EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Slacks, SlackSweep,
                         ::testing::Values(0.02, 0.15, 0.30, 0.50, 1.00));

// --- Seed robustness -------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, GeneratorAndEngineHoldInvariantsAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  const SpotMarket market(paper_traces(seed), cc2_instance(),
                          QueueDelayModel());
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 80};
  const RunResult r = testing::run_fixed(
      market, scenario.experiment(17), PolicyKind::kPeriodic,
      Money::cents(81), {0, 1, 2});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// --- Adaptive and Large-bid end-to-end on the calibrated market -----------------------

TEST(Integration, AdaptiveMeetsDeadlineInBothWindows) {
  for (VolatilityWindow window :
       {VolatilityWindow::kLow, VolatilityWindow::kHigh}) {
    const Scenario scenario{window, 0.15, 300, 80};
    for (std::size_t chunk : {std::size_t{12}, std::size_t{55}}) {
      AdaptiveStrategy strategy;
      Engine engine(shared_market(), scenario.experiment(chunk), strategy);
      const RunResult r = engine.run();
      EXPECT_TRUE(r.met_deadline);
      // The paper's bound: never beyond 20% above on-demand.
      EXPECT_LE(r.total_cost, Money::dollars(48.0 * 1.2));
    }
  }
}

TEST(Integration, LargeBidNeverTerminatedOutOfBid) {
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 80};
  FixedStrategy strategy(
      LargeBidPolicy::large_bid(), {2},
      std::make_unique<LargeBidPolicy>(Money::cents(81)));
  Engine engine(shared_market(), scenario.experiment(8), strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.out_of_bid_terminations, 0);
}

TEST(Integration, RedundancyCostsAtMostSumOfSingles) {
  // Per-experiment, the N=3 run can pay at most what three always-on
  // single-zone runs would pay together, plus restart slop.
  const Scenario scenario{VolatilityWindow::kLow, 0.50, 300, 80};
  const Experiment e = scenario.experiment(33);
  Money singles;
  for (std::size_t z = 0; z < 3; ++z) {
    singles += testing::run_fixed(shared_market(), e,
                                  PolicyKind::kPeriodic, Money::cents(81),
                                  {z})
                   .total_cost;
  }
  const RunResult redundant = testing::run_fixed(
      shared_market(), e, PolicyKind::kPeriodic, Money::cents(81),
      {0, 1, 2});
  EXPECT_LE(redundant.total_cost, singles + Money::dollars(3.0));
}

TEST(Integration, HigherRedundancyNeverLosesMoreProgressToOutages) {
  const Scenario scenario{VolatilityWindow::kHigh, 0.50, 300, 80};
  const Experiment e = scenario.experiment(44);
  const RunResult one = testing::run_fixed(
      shared_market(), e, PolicyKind::kPeriodic, Money::cents(81), {0});
  const RunResult three = testing::run_fixed(
      shared_market(), e, PolicyKind::kPeriodic, Money::cents(81),
      {0, 1, 2});
  EXPECT_LE(three.full_outages, one.full_outages);
}

TEST(Integration, OnDemandBaselineIsFortyEight) {
  const Scenario scenario{VolatilityWindow::kLow, 0.15, 300, 80};
  const RunResult r = run_on_demand_baseline(scenario.experiment(0),
                                             Money::dollars(2.40));
  EXPECT_EQ(r.total_cost, Money::dollars(48.0));
}

}  // namespace
}  // namespace redspot
