// Decision-path zero-copy / incremental-model properties (DESIGN.md §10).
//
// Three families of guarantees, all bit-exact:
//   * IncrementalMarkovModel::observe equals build_markov_model over the
//     same window after any sequence of slides — in unique-price mode AND
//     in quantile-binned mode — including the state-set-changing edges
//     (evicted last occurrence, appended new price).
//   * HistoryStats::advance equals a freshly constructed HistoryStats.
//   * The steady-state decision path (constant-price slide + memoized
//     expected_uptime + Engine::min_observed_price) performs ZERO heap
//     allocations, verified through a global operator new hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/random.hpp"
#include "core/engine.hpp"
#include "core/strategy.hpp"
#include "core/adaptive/history_stats.hpp"
#include "markov/incremental.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "test_util.hpp"

// --- Allocation-counting hook -------------------------------------------------
//
// Replaces the global allocator for this test binary. Counting is gated on
// an atomic flag so the hook costs one relaxed load when disabled; tests
// flip it on around the exact region they assert about.
//
// Sanitizer builds keep their own allocator interceptors (replacing
// operator new underneath ASan trips alloc-dealloc-mismatch), so the hook
// compiles out there: the counter reads 0 and the zero-allocation
// assertions hold vacuously. Release CI enforces them for real.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define REDSPOT_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define REDSPOT_ALLOC_HOOK 0
#else
#define REDSPOT_ALLOC_HOOK 1
#endif
#else
#define REDSPOT_ALLOC_HOOK 1
#endif

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

#if REDSPOT_ALLOC_HOOK
void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  return p;
}
#endif  // REDSPOT_ALLOC_HOOK
}  // namespace

#if REDSPOT_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // REDSPOT_ALLOC_HOOK

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::single_zone;
using testing::step_series;
using testing::zones;

/// Allocations performed while the guard is alive.
class AllocCounter {
 public:
  AllocCounter() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~AllocCounter() { g_count_allocs.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};

PriceSeries series_of(const std::vector<double>& prices, SimTime start = 0) {
  std::vector<Money> samples;
  samples.reserve(prices.size());
  for (double p : prices) samples.push_back(Money::dollars(p));
  return PriceSeries(start, kPriceStep, std::move(samples));
}

/// Bit-exact model comparison: same states, same doubles, same step.
void expect_models_identical(const MarkovModel& got, const MarkovModel& want) {
  ASSERT_EQ(got.num_states(), want.num_states());
  EXPECT_EQ(got.step, want.step);
  for (std::size_t s = 0; s < got.num_states(); ++s)
    EXPECT_EQ(got.state_prices[s], want.state_prices[s]) << "state " << s;
  for (std::size_t r = 0; r < got.num_states(); ++r)
    for (std::size_t c = 0; c < got.num_states(); ++c)
      EXPECT_EQ(got.trans(r, c), want.trans(r, c)) << r << "," << c;
}

/// Slides a window over `series` with random forward shifts and checks the
/// incremental model against a from-scratch build at every step.
void check_random_slides(const PriceSeries& series, std::uint64_t seed,
                         std::size_t rounds) {
  Rng rng(seed);
  IncrementalMarkovModel inc;
  const std::size_t window_samples = 48;
  const std::vector<Money> bids = {Money::dollars(0.05), Money::dollars(0.27),
                                   Money::dollars(0.50), Money::dollars(2.40)};

  std::size_t lo = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const SimTime from = series.start() + static_cast<SimTime>(lo) * kPriceStep;
    const SimTime to = from + static_cast<SimTime>(window_samples) * kPriceStep;
    const PriceView window = series.view().window(from, to);

    const MarkovModel& got = inc.observe(window);
    const MarkovModel want = build_markov_model(window);
    expect_models_identical(got, want);

    // The memoized uptime must equal the free function on the same model.
    const Money cur = window.sample(window.size() - 1);
    for (const Money bid : bids) {
      EXPECT_EQ(inc.expected_uptime(cur, bid),
                expected_uptime(want, cur, bid))
          << "round " << round << " bid " << bid.to_double();
    }

    // Forward shift of 0-4 samples (0 exercises the identical-window path).
    lo += rng.uniform_index(5);
    if (lo + window_samples > series.size()) break;
  }
  EXPECT_GT(inc.incremental_slides(), 0u);
}

// --- Incremental Markov vs from-scratch --------------------------------------

TEST(IncrementalMarkov, RandomSlidesMatchFromScratch_UniqueMode) {
  // Small price alphabet: every window has <= 6 distinct prices, so the
  // model stays in exact unique-price mode throughout.
  Rng rng(1234);
  const double alphabet[] = {0.25, 0.27, 0.30, 0.55, 0.81, 2.40};
  std::vector<double> prices(400);
  double cur = alphabet[0];
  for (auto& p : prices) {
    if (rng.uniform() < 0.3) cur = alphabet[rng.uniform_index(6)];
    p = cur;  // piecewise-constant, like a real trace
  }
  check_random_slides(series_of(prices), 99, 200);
}

TEST(IncrementalMarkov, RandomSlidesMatchFromScratch_BinnedMode) {
  // Random-walk prices: nearly every sample distinct, so every 48-sample
  // window exceeds max_states = 32 and the binned slide path runs.
  Rng rng(77);
  std::vector<double> prices(400);
  double cur = 0.30;
  for (auto& p : prices) {
    cur = std::max(0.01, cur + rng.uniform(-0.02, 0.02));
    p = cur;
  }
  check_random_slides(series_of(prices), 5150, 200);
}

TEST(IncrementalMarkov, MixedModeTransitionsMatchFromScratch) {
  // Alternating regimes: stretches of a tiny alphabet (unique mode) and
  // stretches of a random walk (binned mode), so slides cross the
  // unique <-> binned boundary both ways.
  Rng rng(4242);
  std::vector<double> prices(500);
  double cur = 0.30;
  for (std::size_t i = 0; i < prices.size(); ++i) {
    const bool walk = (i / 60) % 2 == 1;
    if (walk) {
      cur = std::max(0.01, cur + rng.uniform(-0.03, 0.03));
    } else if (rng.uniform() < 0.4) {
      cur = 0.25 + 0.05 * static_cast<double>(rng.uniform_index(4));
    }
    prices[i] = cur;
  }
  check_random_slides(series_of(prices), 31337, 300);
}

TEST(IncrementalMarkov, EvictedLastOccurrenceOfStateRebuilds) {
  // 0.9 appears exactly once, as the oldest sample of the first window.
  // Sliding one sample evicts its last occurrence: the state set shrinks
  // and the model must match a from-scratch build of the new window.
  std::vector<double> prices = {0.9};
  for (int i = 0; i < 12; ++i) prices.push_back(i % 2 == 0 ? 0.3 : 0.5);
  const PriceSeries s = series_of(prices);

  IncrementalMarkovModel inc;
  const PriceView w0 = s.view().window(s.start(), s.start() + 8 * kPriceStep);
  inc.observe(w0);
  ASSERT_EQ(inc.model().num_states(), 3u);

  const PriceView w1 =
      s.view().window(s.start() + kPriceStep, s.start() + 9 * kPriceStep);
  const MarkovModel& got = inc.observe(w1);
  EXPECT_EQ(got.num_states(), 2u);
  expect_models_identical(got, build_markov_model(w1));
}

TEST(IncrementalMarkov, AppendedNewStateRebuilds) {
  // The appended sample introduces a price unseen in the current window.
  std::vector<double> prices;
  for (int i = 0; i < 10; ++i) prices.push_back(i % 2 == 0 ? 0.3 : 0.5);
  prices.push_back(1.7);
  const PriceSeries s = series_of(prices);

  IncrementalMarkovModel inc;
  const PriceView w0 = s.view().window(s.start(), s.start() + 10 * kPriceStep);
  inc.observe(w0);
  ASSERT_EQ(inc.model().num_states(), 2u);
  const std::uint64_t rebuilds = inc.full_rebuilds();

  const PriceView w1 =
      s.view().window(s.start() + kPriceStep, s.start() + 11 * kPriceStep);
  const MarkovModel& got = inc.observe(w1);
  EXPECT_EQ(got.num_states(), 3u);
  EXPECT_EQ(inc.full_rebuilds(), rebuilds + 1);
  expect_models_identical(got, build_markov_model(w1));
}

TEST(IncrementalMarkov, BackwardSlideFallsBackToRebuild) {
  const PriceSeries s = series_of(std::vector<double>(40, 0.3));
  IncrementalMarkovModel inc;
  inc.observe(s.view().window(s.start() + 10 * kPriceStep,
                              s.start() + 30 * kPriceStep));
  const std::uint64_t rebuilds = inc.full_rebuilds();
  const PriceView back =
      s.view().window(s.start(), s.start() + 20 * kPriceStep);
  expect_models_identical(inc.observe(back), build_markov_model(back));
  EXPECT_EQ(inc.full_rebuilds(), rebuilds + 1);
}

TEST(IncrementalMarkov, ConstantSlideKeepsModelAndMemoAllocationFree) {
  // A constant-price slide removes and adds the same transition: counts
  // are net-unchanged, so the model is not re-finished, the uptime memo
  // survives, and the whole decision costs zero heap allocations.
  const PriceSeries s = constant_series(0.3, 100);
  IncrementalMarkovModel inc;
  const auto window_at = [&](std::size_t lo) {
    return s.view().window(s.start() + static_cast<SimTime>(lo) * kPriceStep,
                           s.start() +
                               static_cast<SimTime>(lo + 48) * kPriceStep);
  };
  inc.observe(window_at(0));
  const Money bid = Money::dollars(0.5);
  const Duration up0 = inc.expected_uptime(Money::dollars(0.3), bid);
  const std::uint64_t refreshes = inc.model_refreshes();
  const std::uint64_t hits = inc.memo_hits();

  // Warm slide once (vectors reach steady-state capacity), then assert the
  // next slides are allocation-free.
  inc.observe(window_at(1));
  {
    AllocCounter allocs;
    for (std::size_t lo = 2; lo <= 10; ++lo) {
      inc.observe(window_at(lo));
      const Duration up = inc.expected_uptime(Money::dollars(0.3), bid);
      EXPECT_EQ(up, up0);
    }
    EXPECT_EQ(allocs.count(), 0u) << "steady-state decision path allocated";
  }
  EXPECT_EQ(inc.model_refreshes(), refreshes) << "model was re-finished";
  EXPECT_EQ(inc.memo_hits(), hits + 9) << "uptime memo was invalidated";
  EXPECT_EQ(inc.full_rebuilds(), 1u);
}

// --- HistoryStats incremental advance ----------------------------------------

/// Compares every per-zone stat, plus combined stats over random subsets,
/// between `got` (slid) and a freshly built HistoryStats.
void expect_stats_identical(const HistoryStats& got, const HistoryStats& want,
                            Rng& rng) {
  ASSERT_EQ(got.num_zones(), want.num_zones());
  ASSERT_EQ(got.bid_grid().size(), want.bid_grid().size());
  EXPECT_EQ(got.window_length(), want.window_length());
  for (std::size_t z = 0; z < got.num_zones(); ++z) {
    for (std::size_t b = 0; b < got.bid_grid().size(); ++b) {
      const ZoneBidStats& g = got.stats(z, b);
      const ZoneBidStats& w = want.stats(z, b);
      EXPECT_EQ(g.availability, w.availability) << z << "," << b;
      EXPECT_EQ(g.mean_paid_price, w.mean_paid_price) << z << "," << b;
      EXPECT_EQ(g.interruptions_per_hour, w.interruptions_per_hour)
          << z << "," << b;
      EXPECT_EQ(g.mean_up_spell, w.mean_up_spell) << z << "," << b;
    }
  }
  // Random zone subsets (always non-empty).
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::size_t> subset;
    for (std::size_t z = 0; z < got.num_zones(); ++z)
      if (rng.uniform() < 0.5) subset.push_back(z);
    if (subset.empty()) subset.push_back(rng.uniform_index(got.num_zones()));
    for (std::size_t b = 0; b < got.bid_grid().size(); ++b) {
      EXPECT_EQ(got.combined_availability(subset, b),
                want.combined_availability(subset, b));
      EXPECT_EQ(got.full_outage_rate(subset, b), want.full_outage_rate(subset, b));
    }
  }
}

TEST(HistoryStatsIncremental, RandomSlidesMatchFreshConstruction) {
  Rng rng(2026);
  // Three zones of piecewise-constant prices over a small alphabet, so up
  // and down spells cross the window edges in interesting ways.
  std::vector<PriceSeries> series;
  for (std::uint64_t z = 0; z < 3; ++z) {
    Rng zr(900 + z);
    std::vector<double> prices(600);
    double cur = 0.30;
    for (auto& p : prices) {
      if (zr.uniform() < 0.2)
        cur = 0.20 + 0.15 * static_cast<double>(zr.uniform_index(5));
      p = cur;
    }
    series.push_back(series_of(prices));
  }
  const ZoneTraceSet traces = zones(std::move(series));
  const std::vector<Money> grid = {Money::dollars(0.25), Money::dollars(0.35),
                                   Money::dollars(0.50), Money::dollars(0.80)};

  const std::size_t window_samples = 96;
  std::size_t lo = 0;
  HistoryStats slid(traces, traces.start(),
                    traces.start() +
                        static_cast<SimTime>(window_samples) * kPriceStep,
                    grid);
  for (int round = 0; round < 120; ++round) {
    lo += rng.uniform_index(6);  // 0..5 samples forward
    // Occasionally grow or shrink the right edge by a sample.
    const std::size_t len = window_samples + rng.uniform_index(3) - 1;
    if (lo + len > 600) break;
    const SimTime from =
        traces.start() + static_cast<SimTime>(lo) * kPriceStep;
    const SimTime to = from + static_cast<SimTime>(len) * kPriceStep;
    slid.advance(traces, from, to);
    HistoryStats fresh(traces, from, to, grid);
    expect_stats_identical(slid, fresh, rng);
  }
  EXPECT_GT(slid.incremental_advances(), 0u);
}

TEST(HistoryStatsIncremental, BackwardSlideRebuildsAndMatches) {
  const ZoneTraceSet traces = single_zone(
      step_series({{0.3, 50}, {0.6, 50}, {0.3, 50}}));
  const std::vector<Money> grid = {Money::dollars(0.4)};
  HistoryStats slid(traces, traces.start() + 40 * kPriceStep,
                    traces.start() + 100 * kPriceStep, grid);
  const std::uint64_t rebuilds = slid.full_rebuilds();
  // Backward move: must rebuild, and match fresh.
  const SimTime from = traces.start();
  const SimTime to = traces.start() + 60 * kPriceStep;
  slid.advance(traces, from, to);
  EXPECT_EQ(slid.full_rebuilds(), rebuilds + 1);
  HistoryStats fresh(traces, from, to, grid);
  Rng rng(7);
  expect_stats_identical(slid, fresh, rng);
}

// --- Live trace growth (serve tick ingestion) --------------------------------
//
// The serve daemon appends one sample per zone per tick into pre-reserved
// storage and re-advances trailing windows over the grown trace. Growth
// must keep the incremental paths incremental (stable base pointer) and
// bit-identical to fresh construction.

TEST(LiveTraceGrowth, AppendExtendsGridInPlace) {
  PriceSeries s(0, kPriceStep, {Money::dollars(0.30)});
  s.reserve_total(10);
  const Money* base = s.samples().data();
  for (int i = 1; i < 10; ++i)
    s.append(Money::dollars(0.30 + 0.01 * static_cast<double>(i)));
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.samples().data(), base) << "reserved append reallocated";
  EXPECT_EQ(s.end(), 10 * kPriceStep);
  EXPECT_EQ(s.at(9 * kPriceStep), Money::dollars(0.39));
}

TEST(LiveTraceGrowth, HistoryStatsAdvancesIncrementallyAcrossAppends) {
  Rng rng(404);
  std::vector<Rng> zrs;
  for (std::uint64_t z = 0; z < 3; ++z) zrs.emplace_back(700 + z);
  const auto next_price = [](Rng& zr) {
    return Money::dollars(0.20 +
                          0.15 * static_cast<double>(zr.uniform_index(5)));
  };
  std::vector<PriceSeries> series;
  for (std::uint64_t z = 0; z < 3; ++z) {
    std::vector<Money> samples;
    samples.reserve(200);
    for (int i = 0; i < 200; ++i) samples.push_back(next_price(zrs[z]));
    series.emplace_back(0, kPriceStep, std::move(samples));
  }
  ZoneTraceSet traces = zones(std::move(series));
  traces.reserve_total(500);

  const std::vector<Money> grid = {Money::dollars(0.25), Money::dollars(0.35),
                                   Money::dollars(0.50)};
  constexpr std::size_t kWindow = 96;
  HistoryStats slid(traces, traces.end() - kWindow * kPriceStep, traces.end(),
                    grid);
  const std::uint64_t rebuilds = slid.full_rebuilds();
  while (traces.zone(0).size() < 500) {
    std::vector<Money> tick;
    for (std::uint64_t z = 0; z < 3; ++z) tick.push_back(next_price(zrs[z]));
    traces.append_tick(tick);
    if (rng.uniform() < 0.4) continue;  // tenants don't re-advise every tick
    const SimTime to = traces.end();
    const SimTime from = to - static_cast<SimTime>(kWindow) * kPriceStep;
    slid.advance(traces, from, to);
    HistoryStats fresh(traces, from, to, grid);
    expect_stats_identical(slid, fresh, rng);
  }
  EXPECT_EQ(slid.full_rebuilds(), rebuilds) << "growth forced a rebuild";
  EXPECT_GT(slid.incremental_advances(), 0u);
}

TEST(LiveTraceGrowth, MarkovModelSlidesAcrossAppends) {
  Rng zr(55);
  std::vector<Money> samples;
  samples.reserve(200);
  for (int i = 0; i < 200; ++i)
    samples.push_back(
        Money::dollars(0.20 + 0.15 * static_cast<double>(zr.uniform_index(5))));
  PriceSeries series(0, kPriceStep, std::move(samples));
  series.reserve_total(400);

  constexpr std::size_t kWindow = 96;
  IncrementalMarkovModel inc(8);  // small alphabet: unique-price mode
  inc.observe(series.view(series.end() - kWindow * kPriceStep, series.end()));
  while (series.size() < 400) {
    series.append(
        Money::dollars(0.20 + 0.15 * static_cast<double>(zr.uniform_index(5))));
    const PriceView w =
        series.view(series.end() - kWindow * kPriceStep, series.end());
    expect_models_identical(inc.observe(w), build_markov_model(w));
  }
  EXPECT_GT(inc.incremental_slides(), 0u);
  EXPECT_EQ(inc.full_rebuilds(), 1u) << "growth forced a rebuild";
}

// --- Engine history at the trace edge ----------------------------------------

TEST(EngineHistory, MinObservedPriceAtTraceStartSeesOnlyElapsedSamples) {
  // The cheapest price (0.20) only appears from the second sample onward.
  // At t = start the engine has seen exactly one sample, so S_min must be
  // 0.90 — a windowing bug that reads the whole trace would report 0.20.
  const ZoneTraceSet traces =
      single_zone(step_series({{0.90, 1}, {0.20, 5}, {0.70, 30}}));
  const SpotMarket market = make_market(traces);
  const Experiment experiment = testing::small_experiment(1.0, 0.5, 60);
  ASSERT_EQ(experiment.start, traces.start());

  FixedStrategy strategy(Money::dollars(1.0), {0},
                         make_policy(PolicyKind::kThreshold));
  Engine engine(market, experiment, strategy);

  // Pre-run: now() == experiment.start, history is the partial first step.
  const PriceView h = engine.history(0);
  EXPECT_EQ(h.start(), traces.start());
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(engine.min_observed_price(0), Money::dollars(0.90));
}

TEST(EngineHistory, MinObservedPriceIsAllocationFree) {
  const ZoneTraceSet traces =
      single_zone(step_series({{0.90, 4}, {0.20, 5}, {0.70, 30}}));
  const SpotMarket market = make_market(traces);
  const Experiment experiment =
      testing::small_experiment(1.0, 0.5, 60, 6 * kPriceStep);

  FixedStrategy strategy(Money::dollars(1.0), {0},
                         make_policy(PolicyKind::kThreshold));
  Engine engine(market, experiment, strategy);

  Money min = Money::dollars(0);
  {
    AllocCounter allocs;
    min = engine.min_observed_price(0);
    EXPECT_EQ(allocs.count(), 0u) << "min_observed_price allocated";
  }
  // History [0, 6 steps) covers the 0.90 run and two 0.20 samples.
  EXPECT_EQ(min, Money::dollars(0.20));
}

}  // namespace
}  // namespace redspot
