// Tests for the durability layer: atomic file replacement (common/fs),
// the checksummed run-journal framing and its torn-tail recovery
// (journal/journal), the typed record schemas (journal/run_record), the
// kReplay audit mode, and bit-identical journal resume of ensemble runs
// and exp/ sweeps.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fs.hpp"
#include "common/parallel.hpp"
#include "core/run_result.hpp"
#include "ensemble/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "fault/run_validator.hpp"
#include "journal/journal.hpp"
#include "journal/run_record.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

namespace fs = std::filesystem;

/// Fresh path under the test temp dir (any stale file removed).
std::string tmp_path(const std::string& name) {
  const fs::path p = fs::path(testing::TempDir()) / ("redspot_" + name);
  fs::remove(p);
  return p.string();
}

std::string raw_read(const std::string& path) { return read_file(path); }

void raw_write(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

// ------------------------------------------------------------ common/fs ----

TEST(AtomicFsTest, WriteCreatesAndReplacesAtomically) {
  const std::string path = tmp_path("atomic.txt");
  atomic_write_file(path, "first contents\n");
  EXPECT_EQ(read_file(path), "first contents\n");
  atomic_write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  // No temp litter left next to the destination.
  for (const auto& entry : fs::directory_iterator(fs::path(path).parent_path())) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp"), std::string::npos);
  }
}

TEST(AtomicFsTest, WriteToBadDirectoryThrowsAndLeavesNothing) {
  const std::string path =
      (fs::path(testing::TempDir()) / "no_such_dir_xyz" / "f").string();
  EXPECT_THROW(atomic_write_file(path, "x"), std::runtime_error);
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFsTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(tmp_path("missing.txt")), std::runtime_error);
}

namespace {
volatile sig_atomic_t g_alarm_count = 0;
void count_alarm(int) { g_alarm_count = g_alarm_count + 1; }
}  // namespace

// Every fs helper must resume across EINTR. An interval timer with a
// non-SA_RESTART SIGALRM handler peppers the process with signals while
// 2 MiB crosses a pipe in each direction through write_fully/read_fully —
// a blocked write on a full pipe (and a blocked read on an empty one)
// then really returns EINTR / short counts, which unguarded I/O turns
// into spurious failures or torn transfers.
TEST(AtomicFsTest, FullyHelpersResumeAcrossInterruptingTimer) {
  int to_child[2];
  int to_parent[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(to_parent), 0);

  std::string blob(2u << 20, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<char>((i * 131) ^ (i >> 8));

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: slowly drain the whole blob into memory, then slowly echo
    // it back. Buffering the full blob (instead of chunk-echoing) keeps
    // the two pipes from deadlocking — chunk-echo would block on the
    // full return pipe and stop draining the input one — while the
    // usleep per chunk keeps the parent blocked in write_fully and then
    // read_fully long enough for the timer to interrupt both.
    ::close(to_child[1]);
    ::close(to_parent[0]);
    std::string copy(blob.size(), '\0');
    const std::size_t chunk = 64u << 10;
    for (std::size_t at = 0; at < copy.size(); at += chunk) {
      const std::size_t want = std::min(chunk, copy.size() - at);
      if (!read_fully(to_child[0], copy.data() + at, want, "echo read"))
        _exit(3);
      ::usleep(2000);
    }
    for (std::size_t at = 0; at < copy.size(); at += chunk) {
      const std::size_t want = std::min(chunk, copy.size() - at);
      write_fully(to_parent[1], copy.data() + at, want, "echo write");
      ::usleep(2000);
    }
    _exit(0);
  }
  ::close(to_child[0]);
  ::close(to_parent[1]);

  // Parent: non-SA_RESTART handler + 5 ms interval timer = a stream of
  // EINTRs for the duration of the transfer.
  struct sigaction sa = {};
  sa.sa_handler = count_alarm;
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction old_sa = {};
  ASSERT_EQ(::sigaction(SIGALRM, &sa, &old_sa), 0);
  itimerval timer = {};
  timer.it_interval.tv_usec = 5000;
  timer.it_value.tv_usec = 5000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &timer, nullptr), 0);

  write_fully(to_child[1], blob.data(), blob.size(), "blob write");
  std::string echoed(blob.size(), '\0');
  ASSERT_TRUE(
      read_fully(to_parent[0], echoed.data(), echoed.size(), "blob read"));

  // Disarm before asserting so a failure report cannot be interrupted.
  itimerval off = {};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &off, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &old_sa, nullptr), 0);

  EXPECT_GT(g_alarm_count, 0) << "timer never fired; test proved nothing";
  EXPECT_EQ(echoed, blob) << "transfer torn despite *_fully helpers";

  ::close(to_child[1]);
  ::close(to_parent[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// read_fully distinguishes clean EOF-before-first-byte (false) from a
// torn mid-buffer EOF (throw) — the journal's opening scan depends on it.
TEST(AtomicFsTest, ReadFullyEofSemantics) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  write_fully(fds[1], "abc", 3, "pipe");
  ::close(fds[1]);

  char buf[3];
  ASSERT_TRUE(read_fully(fds[0], buf, 3, "exact"));
  EXPECT_EQ(std::string(buf, 3), "abc");
  // Clean EOF before the first byte: false, not an error.
  EXPECT_FALSE(read_fully(fds[0], buf, 3, "eof"));
  ::close(fds[0]);

  // EOF in the middle of a requested buffer: an error, never silence.
  ASSERT_EQ(::pipe(fds), 0);
  write_fully(fds[1], "ab", 2, "pipe");
  ::close(fds[1]);
  EXPECT_THROW(read_fully(fds[0], buf, 3, "torn"), std::runtime_error);
  ::close(fds[0]);
}

// --------------------------------------------------------- journal framing --

TEST(RunJournalTest, FreshJournalIsEmptyAndDurable) {
  const std::string path = tmp_path("fresh.journal");
  RunJournal j(path);
  EXPECT_EQ(j.records().size(), 0u);
  EXPECT_EQ(j.open_stats().intact_records, 0u);
  EXPECT_FALSE(j.open_stats().recovered_tail);
  // The magic is on disk immediately.
  EXPECT_EQ(raw_read(path).substr(0, 8), std::string(RunJournal::kMagic, 8));
}

TEST(RunJournalTest, AppendsAreVisibleToTheNextOpen) {
  const std::string path = tmp_path("roundtrip.journal");
  {
    RunJournal j(path);
    j.append("alpha");
    j.append(std::string("bin\0ary\xff", 8));
    j.append("");
    EXPECT_EQ(j.appended(), 3u);
    EXPECT_EQ(j.records().size(), 0u);  // replay snapshot is at open time
  }
  RunJournal j(path);
  ASSERT_EQ(j.records().size(), 3u);
  EXPECT_EQ(j.records()[0], "alpha");
  EXPECT_EQ(j.records()[1], std::string("bin\0ary\xff", 8));
  EXPECT_EQ(j.records()[2], "");
  EXPECT_FALSE(j.open_stats().recovered_tail);
}

TEST(RunJournalTest, TornTailIsTruncatedAndAppendsResume) {
  const std::string path = tmp_path("torn.journal");
  {
    RunJournal j(path);
    j.append("record-zero");
    j.append("record-one");
    j.append("record-two");
  }
  const std::string intact = raw_read(path);
  // Tear mid-way through the last record, as a crash during write() would.
  raw_write(path, intact.substr(0, intact.size() - 5));
  {
    RunJournal j(path);
    ASSERT_EQ(j.records().size(), 2u);
    EXPECT_EQ(j.records()[1], "record-one");
    EXPECT_TRUE(j.open_stats().recovered_tail);
    EXPECT_GT(j.open_stats().dropped_bytes, 0u);
    j.append("record-two-again");  // resumes cleanly after the truncation
  }
  RunJournal j(path);
  ASSERT_EQ(j.records().size(), 3u);
  EXPECT_EQ(j.records()[2], "record-two-again");
  EXPECT_FALSE(j.open_stats().recovered_tail);
}

TEST(RunJournalTest, FlippedByteEndsTheIntactPrefix) {
  const std::string path = tmp_path("flipped.journal");
  {
    RunJournal j(path);
    j.append("record-zero");
    j.append("record-one");
    j.append("record-two");
  }
  std::string bytes = raw_read(path);
  // Corrupt one payload byte of the middle record: everything from that
  // record on is untrusted (prefix rule), even though the last record's
  // own checksum would still verify.
  const std::size_t frame0 = 8 + 8 + std::string("record-zero").size();
  const std::size_t target = frame0 + 8 + 3;  // inside record-one's payload
  bytes[target] = static_cast<char>(bytes[target] ^ 0x40);
  raw_write(path, bytes);
  RunJournal j(path);
  ASSERT_EQ(j.records().size(), 1u);
  EXPECT_EQ(j.records()[0], "record-zero");
  EXPECT_TRUE(j.open_stats().recovered_tail);
}

TEST(RunJournalTest, RefusesToAdoptAForeignFile) {
  const std::string path = tmp_path("foreign.bin");
  raw_write(path, "this is not a journal, do not truncate me");
  EXPECT_THROW(RunJournal j(path), std::runtime_error);
  // The foreign file is untouched.
  EXPECT_EQ(raw_read(path), "this is not a journal, do not truncate me");
}

TEST(RunJournalTest, ShortTornHeaderIsResetToAFreshJournal) {
  const std::string path = tmp_path("shorthdr.journal");
  raw_write(path, "RSP");  // crash while writing the magic itself
  RunJournal j(path);
  EXPECT_EQ(j.records().size(), 0u);
  j.append("ok");
  RunJournal reopened(path);
  ASSERT_EQ(reopened.records().size(), 1u);
}

// --------------------------------------------------------- record schemas --

RunResult sample_run() {
  RunResult r;
  r.total_cost = Money::dollars(12.5);
  r.spot_cost = Money::dollars(10.0);
  r.on_demand_cost = Money::dollars(2.5);
  r.completed = true;
  r.met_deadline = true;
  r.switched_to_on_demand = true;
  r.finish_time = 123456;
  r.checkpoints_committed = 7;
  r.restarts = 3;
  r.out_of_bid_terminations = 2;
  r.full_outages = 1;
  r.config_changes = 4;
  r.spot_instance_seconds = 3600;
  r.on_demand_seconds = 1800;
  r.queue_delay_total = 299;
  r.committed_progress = 86400;
  r.faults.ckpt_write_failures = 1;
  r.faults.notices_late = 2;
  r.faults.backoff_total = 60;
  return r;
}

void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_cost.micros(), b.total_cost.micros());
  EXPECT_EQ(a.spot_cost.micros(), b.spot_cost.micros());
  EXPECT_EQ(a.on_demand_cost.micros(), b.on_demand_cost.micros());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.met_deadline, b.met_deadline);
  EXPECT_EQ(a.switched_to_on_demand, b.switched_to_on_demand);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.checkpoints_committed, b.checkpoints_committed);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.out_of_bid_terminations, b.out_of_bid_terminations);
  EXPECT_EQ(a.full_outages, b.full_outages);
  EXPECT_EQ(a.config_changes, b.config_changes);
  EXPECT_EQ(a.spot_instance_seconds, b.spot_instance_seconds);
  EXPECT_EQ(a.on_demand_seconds, b.on_demand_seconds);
  EXPECT_EQ(a.queue_delay_total, b.queue_delay_total);
  EXPECT_EQ(a.committed_progress, b.committed_progress);
  EXPECT_EQ(a.faults.ckpt_write_failures, b.faults.ckpt_write_failures);
  EXPECT_EQ(a.faults.notices_late, b.faults.notices_late);
  EXPECT_EQ(a.faults.backoff_total, b.faults.backoff_total);
}

TEST(RunRecordTest, EnsembleShardRoundtrip) {
  ShardRecordBuilder builder(0xABCDEF12u, 3, 10, 12, 2);
  const RunResult run = sample_run();
  for (int i = 0; i < 4; ++i) builder.add_run(run);
  const std::string& payload = builder.payload();
  EXPECT_EQ(record_type(payload), RecordType::kEnsembleShard);

  const auto rec = decode_ensemble_shard(payload);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->spec_hash, 0xABCDEF12u);
  EXPECT_EQ(rec->shard, 3u);
  EXPECT_EQ(rec->lo, 10u);
  EXPECT_EQ(rec->hi, 12u);
  EXPECT_EQ(rec->num_configs, 2u);
  ASSERT_EQ(rec->runs.size(), 4u);
  for (const RunResult& r : rec->runs) expect_same_run(run, r);
}

TEST(RunRecordTest, IncompleteBuilderRefusesToEmit) {
  ShardRecordBuilder builder(1, 0, 0, 2, 1);
  builder.add_run(sample_run());
  EXPECT_THROW(builder.payload(), CheckFailure);  // 1 of 2 runs added
  builder.add_run(sample_run());
  EXPECT_NO_THROW(builder.payload());
  EXPECT_THROW(builder.add_run(sample_run()), CheckFailure);  // overflow
}

TEST(RunRecordTest, DecodersAreTotalOnMalformedPayloads) {
  ShardRecordBuilder builder(9, 0, 0, 1, 1);
  builder.add_run(sample_run());
  const std::string payload = builder.payload();

  EXPECT_FALSE(decode_ensemble_shard("").has_value());
  EXPECT_FALSE(decode_ensemble_shard(payload.substr(0, 10)).has_value());
  EXPECT_FALSE(
      decode_ensemble_shard(payload.substr(0, payload.size() - 1)).has_value());
  EXPECT_FALSE(decode_ensemble_shard(payload + "x").has_value());
  EXPECT_FALSE(decode_sweep_chunk(payload).has_value());  // wrong type tag
  EXPECT_FALSE(decode_clean_stop(payload).has_value());
  EXPECT_FALSE(record_type("").has_value());
  EXPECT_FALSE(record_type("\x63\x00\x00\x00").has_value());  // unknown tag
}

TEST(RunRecordTest, SweepChunkAndCleanStopRoundtrip) {
  const RunResult run = sample_run();
  const std::string chunk = encode_sweep_chunk(77, 5, run);
  EXPECT_EQ(record_type(chunk), RecordType::kSweepChunk);
  const auto rec = decode_sweep_chunk(chunk);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->sweep_key, 77u);
  EXPECT_EQ(rec->chunk, 5u);
  expect_same_run(run, rec->run);

  const std::string stop =
      encode_clean_stop(CleanStopRecord{0xFEEDu, 12, 64});
  EXPECT_EQ(record_type(stop), RecordType::kCleanStop);
  const auto s = decode_clean_stop(stop);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->key, 0xFEEDu);
  EXPECT_EQ(s->units_done, 12u);
  EXPECT_EQ(s->units_total, 64u);
}

// -------------------------------------------------------- replay auditing --

TEST(AuditModeTest, CompactRecordPassesReplayAuditAndCorruptionFails) {
  const SpotMarket market(paper_traces(3), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::fixed(0)));
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 2};
  const auto results = run_fixed_sweep(
      market, scenario, PolicyRunSpec{PolicyKind::kPeriodic, Money::cents(81), {0}});
  ASSERT_EQ(results.size(), 2u);

  // Roundtrip through the compact encoding (drops the per-run logs).
  const auto rec = decode_sweep_chunk(encode_sweep_chunk(1, 0, results[0]));
  ASSERT_TRUE(rec.has_value());
  const RunValidator validator(scenario.experiment(0), market.on_demand_rate());
  EXPECT_TRUE(validator.audit(rec->run, AuditMode::kReplay).empty());

  // A checksum-intact but semantically corrupt record must still be
  // rejected by the replay audit (exact cost decomposition).
  RunResult tampered = rec->run;
  tampered.total_cost = tampered.total_cost + Money::cents(1);
  EXPECT_FALSE(validator.audit(tampered, AuditMode::kReplay).empty());
}

// --------------------------------------------------- ensemble replay ------

EnsembleSpec journal_spec() {
  EnsembleSpec spec;
  spec.window = VolatilityWindow::kHigh;
  spec.slack_fraction = 0.15;
  spec.checkpoint_cost = 300;
  spec.seed = 321;
  spec.replications = 12;
  spec.num_shards = 6;
  spec.bootstrap_replicates = 40;
  spec.use_cache = false;
  EnsembleConfig periodic;
  periodic.policy = PolicyKind::kPeriodic;
  periodic.zones = {0};
  EnsembleConfig threshold;
  threshold.policy = PolicyKind::kThreshold;
  threshold.zones = {1};
  spec.configs = {periodic, threshold};
  spec.min_groups.push_back({"best of 2", {0, 1}});
  return spec;
}

TEST(EnsembleJournalTest, ReplayedRunIsBitIdenticalToCleanRun) {
  const std::string path = tmp_path("ensemble_replay.journal");
  const EnsembleSpec spec = journal_spec();
  const EnsembleRunner runner(spec);
  ThreadPool pool(4);

  const EnsembleResult clean = runner.run(pool);

  {
    RunJournal journal(path);
    EnsembleRunOptions options;
    options.journal = &journal;
    const EnsembleResult first = runner.run(pool, options);
    EXPECT_EQ(first.shards_replayed, 0u);
    EXPECT_EQ(first.shards_recomputed, spec.num_shards);
    EXPECT_FALSE(first.interrupted);
    EXPECT_EQ(first.table("t"), clean.table("t"));
  }
  {
    RunJournal journal(path);
    ASSERT_EQ(journal.records().size(), spec.num_shards);
    EnsembleRunOptions options;
    options.journal = &journal;
    // Replay on a different pool size: still bit-identical.
    ThreadPool one(1);
    const EnsembleResult replayed = runner.run(one, options);
    EXPECT_EQ(replayed.shards_replayed, spec.num_shards);
    EXPECT_EQ(replayed.shards_recomputed, 0u);
    EXPECT_EQ(replayed.table("t"), clean.table("t"));
    ASSERT_EQ(replayed.configs.size(), clean.configs.size());
    for (std::size_t c = 0; c < clean.configs.size(); ++c) {
      // Bitwise, not approximate: the resume contract.
      EXPECT_EQ(replayed.configs[c].cost().mean(), clean.configs[c].cost().mean());
      EXPECT_EQ(replayed.configs[c].cost().variance(),
                clean.configs[c].cost().variance());
      EXPECT_EQ(replayed.configs[c].cost().mean_ci(),
                clean.configs[c].cost().mean_ci());
      EXPECT_EQ(replayed.configs[c].restarts().mean(),
                clean.configs[c].restarts().mean());
    }
    EXPECT_EQ(replayed.groups[0].cost().mean(), clean.groups[0].cost().mean());
  }
}

TEST(EnsembleJournalTest, PartialJournalResumesTheMissingShardsOnly) {
  const std::string full_path = tmp_path("ensemble_full.journal");
  const std::string partial_path = tmp_path("ensemble_partial.journal");
  const EnsembleSpec spec = journal_spec();
  const EnsembleRunner runner(spec);
  ThreadPool pool(4);

  const EnsembleResult clean = runner.run(pool);
  {
    RunJournal journal(full_path);
    EnsembleRunOptions options;
    options.journal = &journal;
    runner.run(pool, options);
  }
  // A journal holding only some shards — as a kill mid-run leaves behind.
  {
    RunJournal full(full_path);
    RunJournal partial(partial_path);
    ASSERT_EQ(full.records().size(), spec.num_shards);
    for (std::size_t i = 0; i < 3; ++i) partial.append(full.records()[i]);
  }
  RunJournal journal(partial_path);
  EnsembleRunOptions options;
  options.journal = &journal;
  const EnsembleResult resumed = runner.run(pool, options);
  EXPECT_EQ(resumed.shards_replayed, 3u);
  EXPECT_EQ(resumed.shards_recomputed, spec.num_shards - 3u);
  EXPECT_EQ(resumed.table("t"), clean.table("t"));
  // The resumed run journaled what it recomputed: the next open replays all.
  RunJournal after(partial_path);
  EXPECT_EQ(after.records().size(), spec.num_shards);
}

TEST(EnsembleJournalTest, ForeignSpecRecordsAreIgnored) {
  const std::string path = tmp_path("ensemble_foreign.journal");
  const EnsembleSpec spec_a = journal_spec();
  EnsembleSpec spec_b = journal_spec();
  spec_b.seed = 999;  // different spec hash, same shape
  ThreadPool pool(4);
  {
    RunJournal journal(path);
    EnsembleRunOptions options;
    options.journal = &journal;
    EnsembleRunner(spec_a).run(pool, options);
  }
  RunJournal journal(path);
  EnsembleRunOptions options;
  options.journal = &journal;
  const EnsembleResult b = EnsembleRunner(spec_b).run(pool, options);
  EXPECT_EQ(b.shards_replayed, 0u);  // nothing in the journal matches B
  EXPECT_EQ(b.shards_recomputed, spec_b.num_shards);
  EXPECT_EQ(b.table("t"), EnsembleRunner(spec_b).run(pool).table("t"));
}

TEST(EnsembleJournalTest, ChecksumIntactButCorruptRecordIsRecomputed) {
  const std::string path = tmp_path("ensemble_tampered.journal");
  const EnsembleSpec spec = journal_spec();
  const EnsembleRunner runner(spec);
  ThreadPool pool(4);
  const EnsembleResult clean = runner.run(pool);

  // Forge a well-framed record for shard 0 whose runs violate the billing
  // invariants (total != spot + on-demand): CRC passes, the audit must not.
  {
    RunJournal journal(path);
    const auto [lo, hi] = shard_bounds(spec.replications, spec.num_shards, 0);
    ShardRecordBuilder forged(
        spec.spec_hash(), 0, lo, hi,
        static_cast<std::uint32_t>(spec.configs.size()));
    RunResult bogus = sample_run();
    bogus.total_cost = Money::dollars(999.0);
    for (std::size_t i = 0; i < (hi - lo) * spec.configs.size(); ++i)
      forged.add_run(bogus);
    journal.append(forged.payload());
  }
  RunJournal journal(path);
  ASSERT_EQ(journal.records().size(), 1u);
  EnsembleRunOptions options;
  options.journal = &journal;
  const EnsembleResult result = runner.run(pool, options);
  EXPECT_EQ(result.shards_replayed, 0u);  // forged record failed the audit
  EXPECT_EQ(result.shards_recomputed, spec.num_shards);
  EXPECT_EQ(result.table("t"), clean.table("t"));
}

TEST(EnsembleJournalTest, PreSetStopFlagYieldsInterruptedEmptyResult) {
  const EnsembleSpec spec = journal_spec();
  ThreadPool pool(2);
  std::atomic<bool> stop{true};
  EnsembleRunOptions options;
  options.stop = &stop;
  const EnsembleResult r = EnsembleRunner(spec).run(pool, options);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.shards_replayed + r.shards_recomputed, 0u);
  EXPECT_EQ(r.configs[0].count(), 0u);
}

// ------------------------------------------------------- sweep replay ------

TEST(SweepJournalTest, SecondSweepReplaysEveryChunkBitIdentically) {
  const std::string path = tmp_path("sweep_replay.journal");
  const SpotMarket market(paper_traces(3), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::fixed(0)));
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 4};
  const PolicyRunSpec spec{PolicyKind::kPeriodic, Money::cents(81), {0}};

  std::vector<RunResult> first;
  {
    RunJournal journal(path);
    SweepDurability durability;
    durability.journal = &journal;
    first = run_fixed_sweep(market, scenario, spec, {}, &durability);
    EXPECT_EQ(durability.chunks_replayed, 0u);
    EXPECT_EQ(durability.chunks_recomputed, 4u);
  }
  RunJournal journal(path);
  ASSERT_EQ(journal.records().size(), 4u);
  SweepDurability durability;
  durability.journal = &journal;
  const auto replayed = run_fixed_sweep(market, scenario, spec, {}, &durability);
  EXPECT_EQ(durability.chunks_replayed, 4u);
  EXPECT_EQ(durability.chunks_recomputed, 0u);
  ASSERT_EQ(replayed.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(replayed[i].total_cost.micros(), first[i].total_cost.micros());
    EXPECT_EQ(replayed[i].met_deadline, first[i].met_deadline);
    EXPECT_EQ(replayed[i].checkpoints_committed,
              first[i].checkpoints_committed);
  }
  EXPECT_EQ(costs_of(replayed), costs_of(first));
}

TEST(SweepJournalTest, DifferentConfigurationsGetDistinctKeys) {
  const std::string path = tmp_path("sweep_keys.journal");
  const SpotMarket market(paper_traces(3), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::fixed(0)));
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 2};
  const PolicyRunSpec periodic{PolicyKind::kPeriodic, Money::cents(81), {0}};
  const PolicyRunSpec markov{PolicyKind::kMarkovDaly, Money::cents(81), {0}};
  {
    RunJournal journal(path);
    SweepDurability durability;
    durability.journal = &journal;
    run_fixed_sweep(market, scenario, periodic, {}, &durability);
  }
  // The markov sweep must not replay the periodic sweep's chunks.
  RunJournal journal(path);
  SweepDurability durability;
  durability.journal = &journal;
  run_fixed_sweep(market, scenario, markov, {}, &durability);
  EXPECT_EQ(durability.chunks_replayed, 0u);
  EXPECT_EQ(durability.chunks_recomputed, 2u);

  // And the base key separates scenarios and engine options too.
  const Scenario other{VolatilityWindow::kHigh, 0.15, 300, 4};
  EngineOptions notice;
  notice.termination_notice = 120;
  EXPECT_NE(sweep_base_key(market, scenario, {}),
            sweep_base_key(market, other, {}));
  EXPECT_NE(sweep_base_key(market, scenario, {}),
            sweep_base_key(market, scenario, notice));
}

}  // namespace
}  // namespace redspot
