// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "sim/simulation.hpp"

namespace redspot {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&order] { order.push_back(3); });
  sim.schedule_at(10, [&order] { order.push_back(1); });
  sim.schedule_at(20, [&order] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, FifoWithinTimestamp) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5, [&order] { order.push_back(1); });
  sim.schedule_at(5, [&order] { order.push_back(2); });
  sim.schedule_at(5, [&order] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim(100);
  SimTime fired_at = 0;
  sim.schedule_in(25, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 125);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&fired] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotentAndSafeForUnknownIds) {
  Simulation sim;
  const EventId id = sim.schedule_at(1, [] {});
  sim.cancel(id);
  sim.cancel(id);
  sim.cancel(0);
  sim.cancel(9999);
  sim.run();
}

TEST(Simulation, EventsMayScheduleEvents) {
  Simulation sim;
  int chain = 0;
  std::function<void()> next = [&] {
    ++chain;
    if (chain < 5) sim.schedule_in(10, next);
  };
  sim.schedule_at(0, next);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulation, EventsMayCancelOtherEvents) {
  Simulation sim;
  bool second_fired = false;
  const EventId second =
      sim.schedule_at(20, [&second_fired] { second_fired = true; });
  sim.schedule_at(10, [&sim, second] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 25);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, RunUntilAdvancesClockWhenEmpty) {
  Simulation sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulation, RejectsSchedulingIntoThePast) {
  Simulation sim(100);
  EXPECT_THROW(sim.schedule_at(99, [] {}), CheckFailure);
  EXPECT_NO_THROW(sim.schedule_at(100, [] {}));  // "now" is allowed
}

TEST(Simulation, RejectsNullCallback) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_at(1, Simulation::Callback{}), CheckFailure);
}

TEST(Simulation, PendingCountAndExecutedCount) {
  Simulation sim;
  sim.schedule_at(1, [] {});
  const EventId id = sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.executed_count(), 1u);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(3, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventAtCurrentInstantFromWithinEvent) {
  // An event scheduled at "now" from inside a handler runs after it.
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_at(10, [&order] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulation, CompactionBoundsBacklogUnderCancelChurn) {
  // Schedule-then-cancel churn (the engine's deadline trigger and per-zone
  // events behave exactly like this) must not grow the heap without bound:
  // cancelled entries may never outnumber live ones once past the
  // compaction floor.
  Simulation sim;
  std::vector<EventId> keep;
  for (int i = 0; i < 100; ++i)
    keep.push_back(sim.schedule_at(1'000'000 + i, [] {}));
  std::size_t max_backlog = 0;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = sim.schedule_at(2'000'000 + i, [] {});
    sim.cancel(id);
    max_backlog = std::max(max_backlog, sim.backlog());
  }
  EXPECT_EQ(sim.pending_count(), keep.size());
  // Live = 100 (+1 transient), so the backlog may reach ~2x live + 1 but
  // never the tens of thousands the churn produced.
  EXPECT_LE(max_backlog, 256u);
  EXPECT_LE(sim.backlog(), 256u);
}

TEST(Simulation, CompactionPreservesOrderAndPendingEvents) {
  // Fire enough cancels to force several compactions, then check the
  // survivors still run in time order with FIFO ties.
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(500, [&order] { order.push_back(1); });
  sim.schedule_at(500, [&order] { order.push_back(2); });
  sim.schedule_at(600, [&order] { order.push_back(3); });
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> batch;
    for (int i = 0; i < 100; ++i)
      batch.push_back(sim.schedule_at(1000 + i, [] {}));
    for (EventId id : batch) sim.cancel(id);
  }
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.backlog(), 0u);
}

TEST(Simulation, ManyEventsStressOrdering) {
  Simulation sim;
  std::vector<SimTime> fired;
  // Interleaved scheduling; expect strictly non-decreasing firing times.
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = (i * 7919) % 5000;
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace redspot
