// ZoneBilling (the engine's per-zone billing-cycle accounting) cross-
// checked against a bare market/BillingLedger driven with the identical
// call sequence: forfeiture of out-of-bid partial hours, full-hour user
// terminations, boundary stops, billed spot up-time, and live line-item
// emission through the observer sink.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "core/billing_ledger/zone_billing.hpp"
#include "market/billing.hpp"

namespace redspot {
namespace {

bool same_item(const LineItem& a, const LineItem& b) {
  return a.kind == b.kind && a.zone == b.zone &&
         a.cycle_start == b.cycle_start && a.charged_at == b.charged_at &&
         a.amount == b.amount;
}

void expect_same_items(const ZoneBilling& zb, const BillingLedger& ledger) {
  ASSERT_EQ(zb.items().size(), ledger.items().size());
  for (std::size_t i = 0; i < zb.items().size(); ++i) {
    EXPECT_TRUE(same_item(zb.items()[i], ledger.items()[i])) << "item " << i;
  }
  EXPECT_EQ(zb.total(), ledger.total());
  EXPECT_EQ(zb.spot_total(), ledger.spot_total());
  EXPECT_EQ(zb.on_demand_total(), ledger.on_demand_total());
}

TEST(ZoneBilling, OutOfBidForfeituresMatchBareLedger) {
  ZoneBilling zb;
  BillingLedger ledger;
  const Money rate = Money::cents(30);

  // One full cycle, then an out-of-bid termination half into the second:
  // the partial hour is forfeited (not charged to the user).
  zb.spot_started(0, 0, rate);
  ledger.spot_started(0, 0, rate);
  zb.cycle_boundary(0, rate);
  ledger.cycle_boundary(0, rate);
  zb.spot_terminated(0, kHour + 1800, TerminationCause::kOutOfBid);
  ledger.spot_terminated(0, kHour + 1800, TerminationCause::kOutOfBid);

  expect_same_items(zb, ledger);
  EXPECT_EQ(zb.total(), rate);  // exactly the one completed hour
  // Billed up-time still covers the forfeited stretch: the instance ran.
  EXPECT_EQ(zb.spot_seconds(), kHour + 1800);
}

TEST(ZoneBilling, UserTerminationPaysTheStartedHourInFull) {
  ZoneBilling zb;
  BillingLedger ledger;
  const Money rate = Money::cents(81);

  zb.spot_started(2, 100, rate);
  ledger.spot_started(2, 100, rate);
  zb.spot_terminated(2, 100 + 1200, TerminationCause::kUser);
  ledger.spot_terminated(2, 100 + 1200, TerminationCause::kUser);

  expect_same_items(zb, ledger);
  ASSERT_EQ(zb.items().size(), 1u);
  EXPECT_EQ(zb.items()[0].kind, LineItem::Kind::kSpotUserPartial);
  EXPECT_EQ(zb.items()[0].amount, rate);  // full hour despite 20 min of use
  EXPECT_EQ(zb.spot_seconds(), 1200);
}

TEST(ZoneBilling, BoundaryStopChargesTheCompletedHourAndCloses) {
  ZoneBilling zb;
  BillingLedger ledger;
  const Money rate = Money::cents(50);

  zb.spot_started(1, 0, rate);
  ledger.spot_started(1, 0, rate);
  EXPECT_TRUE(zb.spot_running(1));
  EXPECT_EQ(zb.cycle_end(1), kHour);
  zb.spot_stopped_at_boundary(1, kHour);
  ledger.spot_stopped_at_boundary(1);

  expect_same_items(zb, ledger);
  EXPECT_FALSE(zb.spot_running(1));
  EXPECT_EQ(zb.total(), rate);
  EXPECT_EQ(zb.spot_seconds(), kHour);
}

TEST(ZoneBilling, CycleBoundaryLocksTheNextRate) {
  ZoneBilling zb;
  BillingLedger ledger;

  // Rate locked at cycle start; the boundary charges the old rate and
  // opens the next cycle at the new one.
  zb.spot_started(0, 0, Money::cents(30));
  ledger.spot_started(0, 0, Money::cents(30));
  zb.cycle_boundary(0, Money::cents(45));
  ledger.cycle_boundary(0, Money::cents(45));
  zb.spot_stopped_at_boundary(0, 2 * kHour);
  ledger.spot_stopped_at_boundary(0);

  expect_same_items(zb, ledger);
  ASSERT_EQ(zb.items().size(), 2u);
  EXPECT_EQ(zb.items()[0].amount, Money::cents(30));
  EXPECT_EQ(zb.items()[1].amount, Money::cents(45));
  EXPECT_EQ(zb.spot_seconds(), 2 * kHour);
}

TEST(ZoneBilling, SpotSecondsSumAcrossZones) {
  ZoneBilling zb;
  zb.spot_started(0, 0, Money::cents(30));
  zb.spot_started(1, 600, Money::cents(30));
  EXPECT_EQ(zb.instance_start(0), 0);
  EXPECT_EQ(zb.instance_start(1), 600);
  zb.spot_terminated(0, 900, TerminationCause::kOutOfBid);
  zb.spot_terminated(1, 1800, TerminationCause::kUser);
  EXPECT_EQ(zb.spot_seconds(), 900 + 1200);
}

TEST(ZoneBilling, OnDemandUsageBillsStartedHours) {
  ZoneBilling zb;
  BillingLedger ledger;
  const Money rate = Money::dollars(2.40);

  // 3700 s of on-demand usage = 2 started hours.
  zb.on_demand_usage(1000, 3700, rate);
  ledger.on_demand_usage(1000, 3700, rate);

  expect_same_items(zb, ledger);
  ASSERT_EQ(zb.items().size(), 2u);
  EXPECT_EQ(zb.on_demand_total(), rate * 2);
  EXPECT_EQ(zb.spot_total(), Money());
  EXPECT_EQ(zb.spot_seconds(), 0);  // on-demand never counts as spot time
}

TEST(ZoneBilling, SinkSeesEveryLineItemTheInstantItIsCharged) {
  ZoneBilling zb;
  std::vector<LineItem> emitted;
  zb.set_sink([&emitted](const LineItem& item) { emitted.push_back(item); });

  zb.spot_started(0, 0, Money::cents(30));
  EXPECT_TRUE(emitted.empty());  // starting a cycle charges nothing yet
  zb.cycle_boundary(0, Money::cents(30));
  ASSERT_EQ(emitted.size(), 1u);  // charged at the boundary, not at the end
  zb.spot_terminated(0, kHour + 60, TerminationCause::kUser);
  zb.on_demand_usage(2 * kHour, 100, Money::dollars(2.40));
  ASSERT_EQ(emitted.size(), 3u);

  ASSERT_EQ(zb.items().size(), emitted.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_TRUE(same_item(emitted[i], zb.items()[i])) << "item " << i;
  }
}

TEST(ZoneBilling, LateSinkAttachmentSkipsAlreadyChargedItems) {
  ZoneBilling zb;
  zb.spot_started(0, 0, Money::cents(30));
  zb.cycle_boundary(0, Money::cents(30));

  std::vector<LineItem> emitted;
  zb.set_sink([&emitted](const LineItem& item) { emitted.push_back(item); });
  zb.cycle_boundary(0, Money::cents(30));
  // Only the item charged after attachment reaches the sink.
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].cycle_start, kHour);
}

TEST(ZoneBilling, DoubleStartThrows) {
  ZoneBilling zb;
  zb.spot_started(0, 0, Money::cents(30));
  EXPECT_THROW(zb.spot_started(0, 10, Money::cents(30)), CheckFailure);
}

}  // namespace
}  // namespace redspot
