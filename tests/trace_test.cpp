// Unit tests for the trace substrate: series, trace sets, calendar, CSV
// I/O, experiment windows, availability analysis, the synthetic generator
// and the VAR analysis.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "stats/descriptive.hpp"
#include "test_util.hpp"
#include "trace/availability.hpp"
#include "trace/calendar.hpp"
#include "trace/csv_io.hpp"
#include "trace/synthetic.hpp"
#include "trace/var.hpp"
#include "trace/windows.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::step_series;
using testing::single_zone;

// --- PriceSeries ---------------------------------------------------------------

TEST(PriceSeries, BasicAccessors) {
  const PriceSeries s = constant_series(0.27, 12);
  EXPECT_EQ(s.start(), 0);
  EXPECT_EQ(s.end(), 12 * kPriceStep);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_EQ(s.at(0), Money::dollars(0.27));
  EXPECT_EQ(s.at(12 * kPriceStep - 1), Money::dollars(0.27));
  EXPECT_THROW(s.at(12 * kPriceStep), CheckFailure);
  EXPECT_THROW(s.at(-1), CheckFailure);
}

TEST(PriceSeries, PiecewiseConstantLookup) {
  const PriceSeries s = step_series({{0.30, 2}, {0.50, 2}});
  EXPECT_EQ(s.at(0), Money::dollars(0.30));
  EXPECT_EQ(s.at(kPriceStep * 2 - 1), Money::dollars(0.30));
  EXPECT_EQ(s.at(kPriceStep * 2), Money::dollars(0.50));
}

TEST(PriceSeries, IndexTimeRoundTrip) {
  const PriceSeries s = constant_series(1.0, 5, 10 * kPriceStep);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.index_of(s.time_of(i)), i);
    EXPECT_EQ(s.index_of(s.time_of(i) + kPriceStep - 1), i);
  }
}

TEST(PriceSeries, NextChange) {
  const PriceSeries s = step_series({{0.30, 3}, {0.50, 2}, {0.50, 1}});
  EXPECT_EQ(s.next_change(0), 3 * kPriceStep);
  EXPECT_EQ(s.next_change(3 * kPriceStep), kNever);  // constant to the end
}

TEST(PriceSeries, MinMax) {
  const PriceSeries s = step_series({{0.30, 1}, {2.5, 1}, {0.27, 1}});
  EXPECT_EQ(s.min_price(), Money::dollars(0.27));
  EXPECT_EQ(s.max_price(), Money::dollars(2.5));
}

TEST(PriceSeries, WindowClampsToBounds) {
  const PriceSeries s = step_series({{0.3, 4}, {0.6, 4}});
  const PriceSeries w = s.window(-100, 100 * kPriceStep);
  EXPECT_EQ(w.start(), s.start());
  EXPECT_EQ(w.end(), s.end());
  const PriceSeries mid = s.window(2 * kPriceStep, 6 * kPriceStep);
  EXPECT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid.at(2 * kPriceStep), Money::dollars(0.3));
  EXPECT_EQ(mid.at(4 * kPriceStep), Money::dollars(0.6));
  EXPECT_THROW(s.window(5, 5), CheckFailure);
}

TEST(PriceSeries, WindowUnalignedEndCoversTo) {
  const PriceSeries s = constant_series(1.0, 10);
  // `to` in the middle of a step: the covering sample must be included.
  const PriceSeries w = s.window(0, kPriceStep + 10);
  EXPECT_GE(w.end(), kPriceStep + 10);
}

TEST(PriceSeries, ValidatesConstruction) {
  EXPECT_THROW(PriceSeries(0, kPriceStep, {}), CheckFailure);
  EXPECT_THROW(PriceSeries(7, kPriceStep, {Money()}), CheckFailure);
  EXPECT_THROW(PriceSeries(0, 0, {Money()}), CheckFailure);
}

TEST(PriceSeries, ToDoubles) {
  const PriceSeries s = step_series({{0.27, 1}, {0.81, 1}});
  const std::vector<double> d = s.to_doubles();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 0.27);
  EXPECT_DOUBLE_EQ(d[1], 0.81);
}

// --- ZoneTraceSet ---------------------------------------------------------------

TEST(ZoneTraceSet, AlignmentIsEnforced) {
  std::vector<PriceSeries> misaligned;
  misaligned.push_back(constant_series(0.3, 4));
  misaligned.push_back(constant_series(0.3, 5));
  EXPECT_THROW(ZoneTraceSet({"a", "b"}, std::move(misaligned)),
               CheckFailure);
}

TEST(ZoneTraceSet, AccessAndSelect) {
  const ZoneTraceSet traces = testing::zones(
      {constant_series(0.3, 4), constant_series(0.5, 4),
       constant_series(0.7, 4)});
  EXPECT_EQ(traces.num_zones(), 3u);
  EXPECT_EQ(traces.price(1, 0), Money::dollars(0.5));
  EXPECT_EQ(traces.zone_name(2), "z2");
  const ZoneTraceSet sub = traces.select_zones({2, 0});
  EXPECT_EQ(sub.num_zones(), 2u);
  EXPECT_EQ(sub.price(0, 0), Money::dollars(0.7));
  EXPECT_THROW(traces.select_zones({5}), CheckFailure);
}

TEST(ZoneTraceSet, Window) {
  const ZoneTraceSet traces =
      testing::zones({constant_series(0.3, 10), constant_series(0.5, 10)});
  const ZoneTraceSet w = traces.window(2 * kPriceStep, 4 * kPriceStep);
  EXPECT_EQ(w.num_zones(), 2u);
  EXPECT_EQ(w.zone(0).size(), 2u);
}

// --- Calendar ---------------------------------------------------------------------

TEST(Calendar, MonthLengths) {
  EXPECT_EQ(days_in_month(0), 31);   // Dec 2012
  EXPECT_EQ(days_in_month(2), 28);   // Feb 2013 (not a leap year)
  EXPECT_EQ(days_in_month(13), 31);  // Jan 2014
  EXPECT_THROW(days_in_month(14), CheckFailure);
}

TEST(Calendar, MonthBoundariesAreContiguous) {
  for (std::size_t m = 0; m + 1 < kTraceMonths; ++m)
    EXPECT_EQ(month_end(m), month_start(m + 1));
  EXPECT_EQ(month_start(0), 0);
  EXPECT_EQ(trace_span(), month_end(kTraceMonths - 1));
}

TEST(Calendar, NamedWindows) {
  EXPECT_EQ(month_name(kLowVolatilityMonth), "Mar 2013");
  EXPECT_EQ(month_name(kHighVolatilityMonth), "Jan 2013");
}

TEST(Calendar, DayStart) {
  EXPECT_EQ(day_start(0, 1), 0);
  EXPECT_EQ(day_start(0, 2), kDay);
  EXPECT_THROW(day_start(0, 32), CheckFailure);
  EXPECT_THROW(day_start(0, 0), CheckFailure);
}

// --- CSV I/O -----------------------------------------------------------------------

TEST(CsvIo, RoundTrip) {
  const ZoneTraceSet original = testing::zones(
      {step_series({{0.27, 3}, {1.205, 2}}), step_series({{0.5, 5}})});
  std::ostringstream out;
  write_csv(out, original);
  std::istringstream in(out.str());
  const ZoneTraceSet parsed = read_csv(in);
  ASSERT_EQ(parsed.num_zones(), 2u);
  EXPECT_EQ(parsed.zone(0).size(), original.zone(0).size());
  for (std::size_t i = 0; i < parsed.zone(0).size(); ++i) {
    EXPECT_EQ(parsed.zone(0).sample(i), original.zone(0).sample(i));
    EXPECT_EQ(parsed.zone(1).sample(i), original.zone(1).sample(i));
  }
  EXPECT_EQ(parsed.start(), original.start());
  EXPECT_EQ(parsed.step(), original.step());
}

TEST(CsvIo, RejectsMalformedInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("not,a,header\n0,1,2\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n0,0.3\n");  // only one data row
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n0,0.3\n300,0.3\n700,0.3\n");  // irregular
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n0,0.3\n300,zebra\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n0,0.3,0.4\n300,0.3\n");  // extra field
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
}

TEST(CsvIo, RejectsDuplicateAndEmptyZoneNames) {
  {
    std::istringstream in("time,us-east,us-east\n0,0.3,0.4\n300,0.3,0.4\n");
    try {
      read_csv(in);
      FAIL() << "duplicate zone name accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    }
  }
  {
    std::istringstream in("time,a,\n0,0.3,0.4\n300,0.3,0.4\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
}

TEST(CsvIo, RejectsNanAndNegativePricesWithLineNumbers) {
  {
    std::istringstream in("time,a\n0,0.3\n300,nan\n");
    try {
      read_csv(in);
      FAIL() << "NaN price accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
  }
  {
    std::istringstream in("time,a\n0,inf\n300,0.3\n");
    EXPECT_THROW(read_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,a\n0,0.3\n300,-0.27\n");
    try {
      read_csv(in);
      FAIL() << "negative price accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos);
    }
  }
}

TEST(CsvIo, TypedColumnGroupsRowsIntoPerTypeLanes) {
  std::istringstream in(
      "time,instance_type,us-east-1a,us-east-1b\n"
      "0,cc2.8xlarge,0.270,0.271\n"
      "0,m1.small,0.027,0.028\n"
      "300,cc2.8xlarge,0.275,0.270\n"
      "300,m1.small,0.027,0.029\n");
  const ZoneTraceSet parsed = read_csv(in);
  ASSERT_EQ(parsed.num_zones(), 4u);
  // Type-major in first-appearance order, universe-style lane names.
  EXPECT_EQ(parsed.zone_name(0), "cc2.8xlarge/us-east-1a");
  EXPECT_EQ(parsed.zone_name(1), "cc2.8xlarge/us-east-1b");
  EXPECT_EQ(parsed.zone_name(2), "m1.small/us-east-1a");
  EXPECT_EQ(parsed.zone_name(3), "m1.small/us-east-1b");
  EXPECT_EQ(parsed.zone(0).sample(1), Money::parse("0.275"));
  EXPECT_EQ(parsed.zone(3).sample(1), Money::parse("0.029"));
  EXPECT_EQ(parsed.start(), 0);
  EXPECT_EQ(parsed.step(), 300);
}

TEST(CsvIo, RejectsMixedTypedAndUntypedRowsWithLineNumbers) {
  {
    // Untyped row (no type field) inside a typed file.
    std::istringstream in(
        "time,instance_type,a\n"
        "0,cc2.8xlarge,0.270\n"
        "300,0.275\n"
        "600,cc2.8xlarge,0.270\n");
    try {
      read_csv(in);
      FAIL() << "untyped row in typed file accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("untyped row"), std::string::npos)
          << e.what();
    }
  }
  {
    // Typed row inside an untyped file.
    std::istringstream in(
        "time,a\n"
        "0,0.270\n"
        "300,cc2.8xlarge,0.275\n");
    try {
      read_csv(in);
      FAIL() << "typed row in untyped file accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("typed row"), std::string::npos)
          << e.what();
    }
  }
  {
    // Empty type field.
    std::istringstream in("time,instance_type,a\n0,,0.270\n300,,0.275\n");
    try {
      read_csv(in);
      FAIL() << "empty instance_type accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("empty instance_type"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CsvIo, RejectsTypesOnDifferentTimeGrids) {
  // m1.small is missing its t=300 row.
  std::istringstream in(
      "time,instance_type,a\n"
      "0,cc2.8xlarge,0.270\n"
      "0,m1.small,0.027\n"
      "300,cc2.8xlarge,0.275\n"
      "600,cc2.8xlarge,0.270\n"
      "600,m1.small,0.028\n");
  try {
    read_csv(in);
    FAIL() << "mismatched per-type time grids accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different time grid"),
              std::string::npos)
        << e.what();
  }
}

TEST(CsvIo, RejectsNonMonotoneTimestampsWithLineNumbers) {
  for (const char* body : {"time,a\n0,0.3\n300,0.3\n200,0.3\n",   // decreasing
                           "time,a\n0,0.3\n300,0.3\n300,0.3\n",   // repeated
                           "time,a\n0,0.3\n-300,0.3\n"}) {        // row 2 back
    std::istringstream in(body);
    try {
      read_csv(in);
      FAIL() << "non-monotone timestamps accepted: " << body;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("non-monotone"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
  }
}

// --- Windows ------------------------------------------------------------------------

TEST(Windows, EvenlySpacedAndInBounds) {
  const SimTime w0 = 0, w1 = 30 * kDay;
  const Duration span = 30 * kHour, history = 2 * kDay;
  const auto starts = experiment_starts(w0, w1, span, history, 80);
  ASSERT_EQ(starts.size(), 80u);
  EXPECT_GE(starts.front(), w0 + history - kPriceStep);
  EXPECT_LE(starts.back() + span, w1 + kPriceStep);
  for (std::size_t i = 1; i < starts.size(); ++i)
    EXPECT_GT(starts[i], starts[i - 1]);
  for (SimTime t : starts) EXPECT_EQ(t % kPriceStep, 0);
}

TEST(Windows, SingleExperiment) {
  const auto starts = experiment_starts(0, 10 * kDay, kDay, kDay, 1);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], kDay);
}

TEST(Windows, RejectsWindowTooSmall) {
  EXPECT_THROW(experiment_starts(0, kDay, kDay, kDay, 2), CheckFailure);
  EXPECT_THROW(experiment_starts(0, kDay, kDay, 0, 0), CheckFailure);
}

// --- Availability --------------------------------------------------------------------

TEST(Availability, SegmentsMergeAdjacentStatus) {
  const PriceSeries s =
      step_series({{0.3, 2}, {0.3, 2}, {1.0, 2}, {0.3, 2}});
  const auto segs =
      availability_segments(s, Money::cents(81), 0, s.end());
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_TRUE(segs[0].up);
  EXPECT_EQ(segs[0].length(), 4 * kPriceStep);
  EXPECT_FALSE(segs[1].up);
  EXPECT_TRUE(segs[2].up);
}

TEST(Availability, FractionExact) {
  const PriceSeries s = step_series({{0.3, 3}, {1.0, 1}});
  EXPECT_DOUBLE_EQ(availability_fraction(s, Money::cents(81), 0, s.end()),
                   0.75);
  // Bid at exactly the price counts as up (B >= S).
  EXPECT_DOUBLE_EQ(availability_fraction(s, Money::dollars(0.30), 0, s.end()),
                   0.75);
  EXPECT_DOUBLE_EQ(availability_fraction(s, Money::dollars(0.29), 0, s.end()),
                   0.0);
}

TEST(Availability, CombinedIsAnyUp) {
  const ZoneTraceSet traces = testing::zones({
      step_series({{0.3, 1}, {1.0, 1}, {1.0, 1}, {1.0, 1}}),
      step_series({{1.0, 1}, {0.3, 1}, {1.0, 1}, {1.0, 1}}),
  });
  const Money bid = Money::cents(81);
  EXPECT_DOUBLE_EQ(combined_availability(traces, bid, 0, traces.end()), 0.5);
  EXPECT_DOUBLE_EQ(mean_zones_up(traces, bid, 0, traces.end()), 0.5);
  const auto segs = combined_segments(traces, bid, 0, traces.end());
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_TRUE(segs[0].up);
  EXPECT_EQ(segs[0].length(), 2 * kPriceStep);
}

TEST(Availability, CombinedNeverBelowBestSingle) {
  const ZoneTraceSet traces = paper_traces(11).window(0, 7 * kDay);
  for (Money bid : {Money::cents(47), Money::cents(81)}) {
    double best = 0.0;
    for (std::size_t z = 0; z < traces.num_zones(); ++z)
      best = std::max(best, availability_fraction(traces.zone(z), bid, 0,
                                                  traces.end()));
    EXPECT_GE(combined_availability(traces, bid, 0, traces.end()),
              best - 1e-12);
  }
}

TEST(Availability, AsciiBar) {
  const PriceSeries s = step_series({{0.3, 2}, {1.0, 2}});
  const auto segs = availability_segments(s, Money::cents(81), 0, s.end());
  EXPECT_EQ(ascii_bar(segs, kPriceStep), "##..");
}

// --- Synthetic generator ---------------------------------------------------------------

TEST(Synthetic, DeterministicBySeed) {
  const ZoneTraceSet a = paper_traces(5);
  const ZoneTraceSet b = paper_traces(5);
  for (std::size_t z = 0; z < a.num_zones(); ++z)
    for (std::size_t i = 0; i < 2000; ++i)
      EXPECT_EQ(a.zone(z).sample(i), b.zone(z).sample(i));
}

TEST(Synthetic, SeedsProduceDifferentPaths) {
  const ZoneTraceSet a = paper_traces(5);
  const ZoneTraceSet b = paper_traces(6);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < 2000; ++i)
    if (a.zone(0).sample(i) != b.zone(0).sample(i)) ++diffs;
  EXPECT_GT(diffs, 100u);
}

TEST(Synthetic, ZonesAreDistinct) {
  const ZoneTraceSet t = paper_traces(5);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < 2000; ++i)
    if (t.zone(0).sample(i) != t.zone(1).sample(i)) ++diffs;
  EXPECT_GT(diffs, 100u);
}

TEST(Synthetic, RespectsFloorAndSpikeCeiling) {
  const ZoneTraceSet t = paper_traces(7);
  const Money floor = Money::cents(27);
  const Money forced = Money::dollars(20.02);
  for (std::size_t z = 0; z < t.num_zones(); ++z) {
    EXPECT_GE(t.zone(z).min_price(), floor);
    EXPECT_LE(t.zone(z).max_price(), forced);
  }
}

TEST(Synthetic, CoversFullCalendar) {
  const ZoneTraceSet t = paper_traces(5);
  EXPECT_EQ(t.start(), 0);
  EXPECT_EQ(t.end(), trace_span());
}

TEST(Synthetic, ForcedSpikeIsPresent) {
  const ZoneTraceSet t = paper_traces(42);
  const SimTime spike_mid =
      day_start(kLowVolatilityMonth, 13) + 18 * kHour + 4 * kHour;
  EXPECT_EQ(t.price(0, spike_mid), Money::dollars(20.02));
  // Only zone 0 spikes.
  EXPECT_LT(t.price(1, spike_mid), Money::dollars(3.06));
  // Before and after, zone 0 is calm again.
  EXPECT_LT(t.price(0, spike_mid - 6 * kHour), Money::dollars(3.06));
  EXPECT_LT(t.price(0, spike_mid + 7 * kHour), Money::dollars(3.06));
}

TEST(Synthetic, LowVolatilityWindowMatchesPaperStatistics) {
  const ZoneTraceSet t = paper_traces(42);
  // Zones 1 and 2 carry no forced spike; their March 2013 stats must sit
  // in the paper's band: mean ~$0.30, variance < ~0.015.
  for (std::size_t z : {std::size_t{1}, std::size_t{2}}) {
    const PriceSeries w = t.zone(z).window(month_start(kLowVolatilityMonth),
                                           month_end(kLowVolatilityMonth));
    const std::vector<double> xs = w.to_doubles();
    EXPECT_NEAR(mean(xs), 0.30, 0.04);
    // The paper reports var < 0.01 for March 2013 yet also reports spikes
    // in that window; our generator keeps the variance small but honest
    // about the spikes (see DESIGN.md).
    EXPECT_LT(variance(xs), 0.03);
  }
}

TEST(Synthetic, HighVolatilityWindowMatchesPaperStatistics) {
  const ZoneTraceSet t = paper_traces(42);
  const SimTime from = month_start(kHighVolatilityMonth);
  const SimTime to = month_end(kHighVolatilityMonth);
  double prev_mean = 0.0;
  for (std::size_t z = 0; z < 3; ++z) {
    const std::vector<double> xs = t.zone(z).window(from, to).to_doubles();
    const double m = mean(xs);
    EXPECT_GT(m, 0.55);
    EXPECT_LT(m, 1.45);
    EXPECT_GT(m, prev_mean);  // zone means ascend, like $0.70/$0.90/$1.12
    prev_mean = m;
    EXPECT_GT(variance(xs), 0.2);  // genuinely volatile
  }
}

TEST(Synthetic, PricesArePiecewiseConstant) {
  // Published prices must hold between changes: consecutive-sample change
  // frequency well below 1 (Rising Edge depends on this).
  const ZoneTraceSet t = paper_traces(42);
  const PriceSeries w = t.zone(1).window(month_start(kLowVolatilityMonth),
                                         month_end(kLowVolatilityMonth));
  std::size_t changes = 0;
  for (std::size_t i = 1; i < w.size(); ++i)
    if (w.sample(i) != w.sample(i - 1)) ++changes;
  EXPECT_LT(static_cast<double>(changes) / static_cast<double>(w.size()),
            0.25);
}

TEST(Synthetic, GeneratorValidatesSpec) {
  SyntheticTraceSpec spec = paper_trace_spec(1);
  spec.params[0].pop_back();  // ragged params row
  EXPECT_THROW(generate_traces(spec), CheckFailure);
  SyntheticTraceSpec empty = paper_trace_spec(1);
  empty.params.clear();
  EXPECT_THROW(generate_traces(empty), CheckFailure);
}

// --- VAR ---------------------------------------------------------------------------------

TEST(Var, RecoversDiagonalAr1) {
  // Two independent AR(1) series: cross coefficients must be near zero and
  // own coefficients near the true phi.
  Rng rng(31);
  std::vector<std::vector<double>> series(2, std::vector<double>(4000));
  double x = 0.0, y = 0.0;
  for (std::size_t i = 0; i < 4000; ++i) {
    x = 0.8 * x + rng.normal();
    y = 0.6 * y + rng.normal();
    series[0][i] = x;
    series[1][i] = y;
  }
  const VarFit fit = fit_var(series, 1);
  EXPECT_NEAR(fit.coefficients[0](0, 0), 0.8, 0.05);
  EXPECT_NEAR(fit.coefficients[0](1, 1), 0.6, 0.05);
  EXPECT_NEAR(fit.coefficients[0](0, 1), 0.0, 0.05);
  EXPECT_NEAR(fit.coefficients[0](1, 0), 0.0, 0.05);

  const CrossZoneEffects effects = cross_zone_effects(fit);
  EXPECT_GT(effects.within_to_cross_ratio, 5.0);
}

TEST(Var, DetectsCrossDependence) {
  // y depends on lagged x: the cross coefficient must be recovered.
  Rng rng(37);
  std::vector<std::vector<double>> series(2, std::vector<double>(4000));
  double x = 0.0, y = 0.0;
  for (std::size_t i = 0; i < 4000; ++i) {
    const double nx = 0.5 * x + rng.normal();
    y = 0.3 * y + 0.4 * x + rng.normal();
    x = nx;
    series[0][i] = x;
    series[1][i] = y;
  }
  const VarFit fit = fit_var(series, 1);
  EXPECT_NEAR(fit.coefficients[0](1, 0), 0.4, 0.07);
}

TEST(Var, AicPrefersTrueLagOrder) {
  // AR(2) process: AIC at lag >= 2 must beat lag 1.
  Rng rng(41);
  std::vector<std::vector<double>> series(1, std::vector<double>(6000));
  double x1 = 0.0, x2 = 0.0;
  for (std::size_t i = 0; i < 6000; ++i) {
    const double x = 0.5 * x1 - 0.4 * x2 + rng.normal();
    x2 = x1;
    x1 = x;
    series[0][i] = x;
  }
  const VarFit best = fit_var_aic(series, 4);
  EXPECT_GE(best.lag_order, 2u);
}

TEST(Var, EffectiveSamplesAndShapes) {
  Rng rng(43);
  std::vector<std::vector<double>> series(3, std::vector<double>(500));
  for (auto& s : series)
    for (auto& v : s) v = rng.normal();
  const VarFit fit = fit_var(series, 2);
  EXPECT_EQ(fit.effective_samples, 498u);
  EXPECT_EQ(fit.coefficients.size(), 2u);
  EXPECT_EQ(fit.coefficients[0].rows(), 3u);
  EXPECT_EQ(fit.intercept.size(), 3u);
  EXPECT_EQ(fit.residual_cov.rows(), 3u);
}

TEST(Var, RejectsBadInput) {
  std::vector<std::vector<double>> tiny(2, std::vector<double>(4));
  EXPECT_THROW(fit_var(tiny, 2), CheckFailure);
  EXPECT_THROW(fit_var({}, 1), CheckFailure);
}

TEST(Var, ToSeriesExtractsZones) {
  const ZoneTraceSet traces =
      testing::zones({constant_series(0.3, 5), constant_series(0.5, 5)});
  const auto series = to_series(traces);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[1][0], 0.5);
}

TEST(Var, PaperTracesShowNearIndependentZones) {
  // The headline Section 3.1 property on one month of synthetic data.
  const ZoneTraceSet month = paper_traces(42).window(
      month_start(kHighVolatilityMonth), month_end(kHighVolatilityMonth));
  const VarFit fit = fit_var(to_series(month), 2);
  const CrossZoneEffects effects = cross_zone_effects(fit);
  EXPECT_GT(effects.within_to_cross_ratio, 10.0);
}

}  // namespace
}  // namespace redspot
