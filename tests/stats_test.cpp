// Unit tests for descriptive statistics, histograms and time-series helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/random.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"

namespace redspot {
namespace {

TEST(Descriptive, MeanVariance) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 32.0 / 7.0);  // sample variance
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(32.0 / 7.0));
}

TEST(Descriptive, SingleElement) {
  const std::vector<double> xs{3.5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.5);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
  EXPECT_THROW(mean(std::vector<double>{}), CheckFailure);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Descriptive, QuantileType7) {
  // R's default (type 7) quantile on {1,2,3,4}: q(0.5)=2.5, q(0.25)=1.75.
  const std::vector<double> xs{4, 1, 3, 2};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_THROW(quantile(xs, 1.5), CheckFailure);
}

TEST(Descriptive, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5, 1, 3}), 3.0);
}

TEST(Descriptive, FiveNumberSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const FiveNumberSummary s = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.q1, 25.75);
  EXPECT_DOUBLE_EQ(s.q3, 75.25);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.iqr(), 49.5);
  EXPECT_FALSE(s.str().empty());
}

TEST(Descriptive, RunningStatsMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-8);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
  EXPECT_EQ(rs.count(), 500u);
}

TEST(Descriptive, RunningStatsMergeMatchesBatch) {
  // Chan et al.'s pairwise update: merging per-chunk accumulators must
  // match a single pass over the union, for any split (including empty
  // and singleton chunks).
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 600; ++i) xs.push_back(rng.lognormal(0.0, 1.0));
  const std::size_t cuts[] = {0, 0, 1, 17, 300, 599, 600, 600};
  RunningStats merged;
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    RunningStats chunk;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) chunk.add(xs[i]);
    merged.merge(chunk);
  }
  EXPECT_EQ(merged.count(), xs.size());
  EXPECT_NEAR(merged.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(merged.variance(), variance(xs), 1e-8);
  EXPECT_DOUBLE_EQ(merged.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(merged.max(), max_of(xs));

  RunningStats into_empty;
  into_empty.merge(merged);  // merge into fresh accumulator copies state
  EXPECT_EQ(into_empty.mean(), merged.mean());
  EXPECT_EQ(into_empty.variance(), merged.variance());
}

TEST(Descriptive, RunningStatsEmptyAndOne) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BinsCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinBounds) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 2.5);
  EXPECT_THROW(h.bin_lo(4), CheckFailure);
}

TEST(Histogram, AsciiContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

// --- Time series --------------------------------------------------------------

TEST(TimeSeries, AutocorrelationLagZeroIsOne) {
  const std::vector<double> xs{1, 3, 2, 5, 4, 6};
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(TimeSeries, AutocorrelationOfConstantIsZero) {
  const std::vector<double> xs(10, 4.0);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(TimeSeries, AutocorrelationOfPersistentSeriesIsHigh) {
  // AR(1) with phi = 0.95 has lag-1 autocorrelation near 0.95.
  Rng rng(77);
  std::vector<double> xs(5000);
  double x = 0.0;
  for (auto& v : xs) {
    x = 0.95 * x + rng.normal();
    v = x;
  }
  EXPECT_GT(autocorrelation(xs, 1), 0.9);
  EXPECT_LT(autocorrelation(xs, 1), 1.0);
}

TEST(TimeSeries, WhiteNoiseAutocorrelationNearZero) {
  Rng rng(78);
  std::vector<double> xs(5000);
  for (auto& v : xs) v = rng.normal();
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
}

TEST(TimeSeries, FirstDifference) {
  const std::vector<double> xs{1, 4, 9, 16};
  const std::vector<double> d = first_difference(xs);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 7.0);
  EXPECT_TRUE(first_difference(std::vector<double>{1}).empty());
}

TEST(TimeSeries, Aic) {
  EXPECT_DOUBLE_EQ(aic(-10.0, 3), 26.0);
  // VAR AIC: ln|Sigma| + 2 p K^2 / T.
  EXPECT_DOUBLE_EQ(var_aic(-2.0, 2, 3, 100), -2.0 + 2.0 * 18.0 / 100.0);
  EXPECT_THROW(var_aic(0.0, 1, 3, 0), CheckFailure);
}

}  // namespace
}  // namespace redspot
