// TCP + network-fault kill matrix for the distributed sweep fabric.
//
// The unix-socket matrix (fabric_chaos_test.cpp) proves the fabric
// survives process death; this suite proves it survives the *network*.
// Real coordinator/worker processes talk over TCP loopback while a seeded
// NetFaultInjector (worker --net-chaos) drops connections, delays writes,
// truncates frames mid-byte, duplicates deliveries and one-way-partitions
// the worker's send side — and every scenario's printed ensemble summary
// must stay bit-identical to the single-process redspot-sim reference:
//
//   * plain TCP, 2 and 4 workers, no faults;
//   * drop + delay + truncate + duplicate faults on every worker;
//   * one-way partitions, detected by heartbeat/hello deadlines rather
//     than EOF (a partitioned peer never EOFs — these runs hang without
//     the deadline machinery);
//   * network faults stacked on top of mid-shard SIGKILL chaos;
//   * the coordinator SIGKILLed mid-run over TCP and resumed from its
//     journal on the same (fixed) port.
//
// Convergence within the harness deadline IS part of the contract: every
// scenario is bounded by lease/heartbeat/handshake deadlines, never by
// luck.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet_harness.hpp"

namespace redspot {
namespace {

namespace fs = std::filesystem;
using fleettest::FleetRun;
using fleettest::normalize;
using fleettest::pick_free_port;
using fleettest::run_fleet;
using fleettest::slurp;
using fleettest::spawn;
using fleettest::wait_for;

#ifndef REDSPOT_FABRIC_BIN
#error "REDSPOT_FABRIC_BIN must be defined to the redspot-fabric binary path"
#endif
#ifndef REDSPOT_SIM_BIN
#error "REDSPOT_SIM_BIN must be defined to the redspot-sim binary path"
#endif

/// The ensemble every process in the matrix must describe identically.
const std::vector<std::string> kSpecArgs = {
    "--policy", "periodic", "--zones",        "0",  "--seed", "77",
    "--replications", "36", "--shards", "12", "--no-cache"};

struct NetFleetConfig {
  int num_workers = 2;
  std::string chaos;            ///< process-kill plan (--chaos)
  std::string net_chaos;        ///< network-fault plan (--net-chaos)
  std::string journal_dir;
  std::size_t kill_coordinator_at = 0;
  /// Shortened when the scenario needs silence (a one-way partition) to
  /// be *detected*, not merely survived.
  std::string heartbeat_timeout_ms = "30000";
  std::string handshake_timeout_ms = "2000";
};

FleetRun run_tcp_fleet(const fs::path& base, const std::string& tag,
                       const NetFleetConfig& cfg) {
  const std::uint16_t port = pick_free_port();
  EXPECT_GT(port, 0);
  const std::string endpoint = "tcp:127.0.0.1:" + std::to_string(port);

  std::vector<std::string> coord = {REDSPOT_FABRIC_BIN, "coordinator",
                                    "--socket", endpoint};
  coord.insert(coord.end(), kSpecArgs.begin(), kSpecArgs.end());
  coord.insert(coord.end(),
               {"--lease-ms", "120000", "--heartbeat-timeout-ms",
                cfg.heartbeat_timeout_ms, "--fallback-wait-ms", "30000"});
  if (!cfg.journal_dir.empty())
    coord.insert(coord.end(), {"--journal", cfg.journal_dir});

  std::vector<std::string> worker = {REDSPOT_FABRIC_BIN, "worker", "--socket",
                                     endpoint};
  worker.insert(worker.end(), kSpecArgs.begin(), kSpecArgs.end());
  worker.insert(worker.end(), {"--give-up-ms", "120000",
                               "--handshake-timeout-ms",
                               cfg.handshake_timeout_ms});
  if (!cfg.chaos.empty())
    worker.insert(worker.end(), {"--chaos", cfg.chaos});
  if (!cfg.net_chaos.empty())
    worker.insert(worker.end(), {"--net-chaos", cfg.net_chaos});

  const std::string journal_file =
      cfg.journal_dir.empty() ? "" : cfg.journal_dir + "/run.journal";
  return run_fleet(
      base, tag, coord, [&](std::size_t) { return worker; }, cfg.num_workers,
      journal_file, cfg.kill_coordinator_at);
}

/// True when any worker's captured output mentions the fault plan — the
/// injector provably fired rather than the scenario passing vacuously.
bool faults_fired(const fs::path& base, const std::string& tag,
                  int num_workers) {
  for (int i = 0; i < num_workers; ++i) {
    const std::string out =
        (base / (tag + "_worker" + std::to_string(i) + ".txt")).string();
    if (slurp(out).find("fault plan") != std::string::npos) return true;
  }
  return false;
}

class NetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new fs::path(fs::path(::testing::TempDir()) / "redspot_netchaos");
    fs::remove_all(*base_);
    fs::create_directories(*base_);

    std::vector<std::string> args = {REDSPOT_SIM_BIN, "ensemble"};
    args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
    const std::string out = (*base_ / "reference.txt").string();
    const pid_t pid = spawn(args, out);
    const int status = wait_for(pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << slurp(out);
    reference_ = new std::string(normalize(slurp(out)));
    ASSERT_NE(reference_->find("policy"), std::string::npos) << *reference_;
  }

  static void TearDownTestSuite() {
    fs::remove_all(*base_);
    delete base_;
    delete reference_;
    base_ = nullptr;
    reference_ = nullptr;
  }

  void expect_identical(const FleetRun& run, const std::string& what) {
    ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
                WEXITSTATUS(run.coordinator_status) == 0)
        << what << ":\n"
        << run.output;
    EXPECT_EQ(normalize(run.output), *reference_)
        << what << " diverged from the single-process reference";
  }

  static fs::path* base_;
  static std::string* reference_;
};

fs::path* NetChaosTest::base_ = nullptr;
std::string* NetChaosTest::reference_ = nullptr;

TEST_F(NetChaosTest, PlainTcpBitIdenticalAcrossFleetSizes) {
  for (const int n : {2, 4}) {
    NetFleetConfig cfg;
    cfg.num_workers = n;
    const FleetRun run =
        run_tcp_fleet(*base_, "tcp_plain" + std::to_string(n), cfg);
    expect_identical(run, std::to_string(n) + " TCP workers");
    EXPECT_NE(run.output.find("fleet 12"), std::string::npos) << run.output;
  }
}

TEST_F(NetChaosTest, DropTruncateDuplicateDelayFaults) {
  // Every worker connection drops, delays, tears frames mid-byte and
  // double-delivers per the seeded schedule (no partitions here — those
  // get their own deadline-tuned scenario). The budget bounds the storm
  // so the run converges; the summary must not wobble by one bit.
  NetFleetConfig cfg;
  cfg.num_workers = 2;
  // Rate tuned empirically: fault sites are a pure function of the seeded
  // byte offsets, and this workload's writes land on few enough distinct
  // offsets that thinner rates never fire at all.
  cfg.net_chaos = "5:0.3:cdtu:8";
  const FleetRun run = run_tcp_fleet(*base_, "tcp_faults", cfg);
  expect_identical(run, "drop/delay/truncate/duplicate faults");
  EXPECT_TRUE(faults_fired(*base_, "tcp_faults", cfg.num_workers))
      << "fault plan never fired; the scenario is vacuous";
}

TEST_F(NetChaosTest, OneWayPartitionsDetectedByDeadlines) {
  // A partitioned worker keeps reading but its writes silently vanish —
  // no EOF, no RST. Without the hello/heartbeat deadlines this scenario
  // hangs; with them the coordinator declares the silent peer dead,
  // reassigns its lease, and the worker's own handshake timeout walks it
  // back to a fresh connection.
  NetFleetConfig cfg;
  cfg.num_workers = 2;
  cfg.net_chaos = "11:0.15:p:2";
  cfg.heartbeat_timeout_ms = "3000";
  cfg.handshake_timeout_ms = "1500";
  const FleetRun run = run_tcp_fleet(*base_, "tcp_partition", cfg);
  expect_identical(run, "one-way partitions");
}

TEST_F(NetChaosTest, NetworkFaultsStackedOnProcessKills) {
  // The full storm: every shard's first compute dies by SIGKILL and the
  // surviving traffic is dropped/delayed/torn/duplicated on top.
  NetFleetConfig cfg;
  cfg.num_workers = 2;
  cfg.chaos = "9:1.0:1";
  cfg.net_chaos = "7:0.05:cdtu:6";
  const FleetRun run = run_tcp_fleet(*base_, "tcp_storm", cfg);
  expect_identical(run, "network faults + process kills");
  EXPECT_GT(run.worker_respawns, 0) << "chaos plan never killed anyone";
}

TEST_F(NetChaosTest, TcpCoordinatorKilledAndResumedFromJournal) {
  // SO_REUSEADDR on the coordinator's listener is what makes this work:
  // the restart rebinds the same fixed port while old connections linger
  // in TIME_WAIT, and welcomed workers' fresh reconnect patience carries
  // them across the gap.
  const std::string journal_dir = (*base_ / "tcp_coordkill_journal").string();
  fs::create_directories(journal_dir);
  NetFleetConfig cfg;
  cfg.num_workers = 2;
  cfg.journal_dir = journal_dir;
  cfg.kill_coordinator_at = 2048;
  const FleetRun run = run_tcp_fleet(*base_, "tcp_coordkill", cfg);
  expect_identical(run, "TCP coordinator kill-and-resume");
  EXPECT_NE(run.output.find("journal: replayed"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("journal: replayed 0 shards"), std::string::npos)
      << run.output;
}

}  // namespace
}  // namespace redspot
