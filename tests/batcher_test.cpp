// Batcher guarantees (common/batcher.hpp): per-key serialization,
// coalescing of queued arrivals, per-key FIFO delivery, exception
// surfacing via drain(), and — the serve correctness anchor — batched
// delivery driving a stateful consumer bit-identically to serial
// delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/batcher.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"

namespace redspot {
namespace {

TEST(BatcherTest, DeliversSingleItem) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::pair<int, int>> seen;
  Batcher<int, int> batcher(pool, [&](const int& key, std::vector<int>&& items) {
    std::lock_guard lock(mu);
    for (int v : items) seen.emplace_back(key, v);
  });
  batcher.submit(7, 42);
  batcher.drain();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], std::make_pair(7, 42));
  const BatcherStats s = batcher.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.max_batch, 1u);
}

TEST(BatcherTest, NeverRunsTwoBatchesOfOneKeyConcurrently) {
  ThreadPool pool(8);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  Batcher<int, int> batcher(pool, [&](const int&, std::vector<int>&& items) {
    const int now = in_flight.fetch_add(1) + 1;
    int prev = max_in_flight.load();
    while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {
    }
    // Hold the "model" long enough for racing submits to pile up.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * items.size()));
    in_flight.fetch_sub(1);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) batcher.submit(/*key=*/1, t * 1000 + i);
    });
  }
  for (auto& th : threads) th.join();
  batcher.drain();
  EXPECT_EQ(max_in_flight.load(), 1) << "two batches of one key overlapped";
  EXPECT_EQ(batcher.stats().delivered, 800u);
}

TEST(BatcherTest, CoalescesArrivalsDuringARunningBatch) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release_first = false;
  int batches_seen = 0;
  std::vector<std::size_t> batch_sizes;

  Batcher<int, int> batcher(pool, [&](const int&, std::vector<int>&& items) {
    std::unique_lock lock(mu);
    ++batches_seen;
    batch_sizes.push_back(items.size());
    if (batches_seen == 1) {
      // First batch blocks until the test has queued the pile-up.
      cv.wait(lock, [&] { return release_first; });
    }
  });

  batcher.submit(1, 0);  // becomes batch #1
  // Wait until batch #1 is actually executing, then pile up 25 items.
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5), [&] { return batches_seen >= 1; });
  }
  for (int i = 1; i <= 25; ++i) batcher.submit(1, i);
  {
    std::lock_guard lock(mu);
    release_first = true;
  }
  cv.notify_all();
  batcher.drain();

  // All 25 queued items must arrive as ONE coalesced batch.
  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], 1u);
  EXPECT_EQ(batch_sizes[1], 25u);
  EXPECT_EQ(batcher.stats().max_batch, 25u);
}

TEST(BatcherTest, DistinctKeysProceedWhileOneKeyIsBlocked) {
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  bool other_key_done = false;
  bool blocked_released = false;

  Batcher<int, int> batcher(pool, [&](const int& key, std::vector<int>&&) {
    std::unique_lock lock(mu);
    if (key == 1) {
      // Key 1 refuses to finish until key 2 has been served — only
      // possible if key 2's batch runs concurrently on another thread.
      cv.wait(lock, [&] { return other_key_done; });
      blocked_released = true;
    } else {
      other_key_done = true;
      cv.notify_all();
    }
  });

  batcher.submit(1, 0);
  batcher.submit(2, 0);
  batcher.drain();
  EXPECT_TRUE(blocked_released);
}

TEST(BatcherTest, PerKeyFifoAcrossRacingSubmitters) {
  // Each key has ONE submitting thread (so per-key submission order is
  // defined) but four keys race; each key's delivery order must equal its
  // submission order regardless of batch boundaries.
  ThreadPool pool(4);
  constexpr int kPerKey = 500;
  std::mutex mu;
  std::map<int, std::vector<int>> delivered;
  Batcher<int, int> batcher(pool, [&](const int& key, std::vector<int>&& items) {
    std::lock_guard lock(mu);
    auto& v = delivered[key];
    v.insert(v.end(), items.begin(), items.end());
  });
  std::vector<std::thread> threads;
  for (int key = 0; key < 4; ++key) {
    threads.emplace_back([&, key] {
      Rng rng(1234u + static_cast<std::uint64_t>(key));
      for (int i = 0; i < kPerKey; ++i) {
        batcher.submit(key, i);
        if (rng.uniform() < 0.05)
          std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    });
  }
  for (auto& th : threads) th.join();
  batcher.drain();
  for (int key = 0; key < 4; ++key) {
    ASSERT_EQ(delivered[key].size(), static_cast<std::size_t>(kPerKey));
    for (int i = 0; i < kPerKey; ++i)
      ASSERT_EQ(delivered[key][i], i) << "key " << key << " reordered";
  }
}

TEST(BatcherTest, BatchedDeliveryIsBitIdenticalToSerial) {
  // A stateful consumer (running hash chain per key) fed through racing
  // batched delivery must end in exactly the state serial application
  // produces — the serve models' correctness contract in miniature.
  constexpr int kKeys = 3;
  constexpr int kPerKey = 400;

  auto fold = [](std::uint64_t acc, int item) {
    HashStream h;
    h.u64(acc);
    h.i64(item);
    return h.digest();
  };

  // Serial oracle.
  std::vector<std::uint64_t> expected(kKeys, 0);
  for (int key = 0; key < kKeys; ++key)
    for (int i = 0; i < kPerKey; ++i) expected[key] = fold(expected[key], i);

  ThreadPool pool(4);
  std::vector<std::uint64_t> state(kKeys, 0);
  Batcher<int, int> batcher(pool, [&](const int& key, std::vector<int>&& items) {
    // No lock on state[key]: per-key serialization IS the exclusivity.
    for (int v : items) state[key] = fold(state[key], v);
  });
  std::vector<std::thread> threads;
  for (int key = 0; key < kKeys; ++key) {
    threads.emplace_back([&, key] {
      for (int i = 0; i < kPerKey; ++i) batcher.submit(key, i);
    });
  }
  for (auto& th : threads) th.join();
  batcher.drain();
  for (int key = 0; key < kKeys; ++key)
    EXPECT_EQ(state[key], expected[key]) << "key " << key;
}

TEST(BatcherTest, DrainRethrowsFirstBatchException) {
  ThreadPool pool(2);
  std::atomic<int> delivered_after_throw{0};
  Batcher<int, int> batcher(pool, [&](const int&, std::vector<int>&& items) {
    for (int v : items) {
      if (v < 0) throw std::runtime_error("poisoned item");
      delivered_after_throw.fetch_add(1);
    }
  });
  batcher.submit(1, -1);
  EXPECT_THROW(batcher.drain(), std::runtime_error);
  // The batcher survives: the key unlocked, later items are delivered and
  // the next drain is clean.
  batcher.submit(1, 5);
  batcher.drain();
  EXPECT_EQ(delivered_after_throw.load(), 1);
}

TEST(BatcherTest, DrainOnIdleBatcherReturnsImmediately) {
  ThreadPool pool(1);
  Batcher<int, int> batcher(pool, [](const int&, std::vector<int>&&) {});
  batcher.drain();  // no deadlock, no error
  EXPECT_EQ(batcher.stats().batches, 0u);
}

}  // namespace
}  // namespace redspot
