// Integration tests for the redspot-serve daemon: forks the real binary,
// drives it through the real socket with the real client, and asserts
//   (a) every socket answer is bit-identical to the offline Adaptive
//       decision over the same history prefix,
//   (b) protocol errors are answered without dropping the connection,
//   (c) SIGTERM mid-load drains every buffered request and exits 130.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/advisor.hpp"
#include "serve/client.hpp"
#include "trace/zone_traces.hpp"

namespace redspot::serve {
namespace {

namespace fs = std::filesystem;

#ifndef REDSPOT_SERVE_BIN
#error "REDSPOT_SERVE_BIN must be defined to the redspot-serve binary path"
#endif

pid_t spawn(const std::vector<std::string>& args, const std::string& out_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) _exit(127);
  ::dup2(fd, STDOUT_FILENO);
  ::dup2(fd, STDERR_FILENO);
  ::close(fd);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

int wait_for(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deterministic 2-zone market: one cheap-stable zone, one spiky zone.
ZoneTraceSet make_traces(std::size_t steps) {
  std::vector<Money> a, b;
  for (std::size_t i = 0; i < steps; ++i) {
    a.push_back(Money::cents(27 + static_cast<std::int64_t>(i % 5)));
    b.push_back(Money::cents((i / 30) % 2 == 0 ? 33 : 190));
  }
  std::vector<PriceSeries> series;
  series.emplace_back(0, kPriceStep, std::move(a));
  series.emplace_back(0, kPriceStep, std::move(b));
  return ZoneTraceSet({"za", "zb"}, std::move(series));
}

TraceInitMsg make_init(const ZoneTraceSet& full, std::size_t seed_samples,
                       std::size_t capacity) {
  TraceInitMsg init;
  init.start = full.start();
  init.step = full.step();
  init.capacity_samples = capacity;
  for (std::size_t z = 0; z < full.num_zones(); ++z) {
    init.zone_names.push_back(full.zone_name(z));
    std::vector<Money> seed;
    for (std::size_t i = 0; i < seed_samples; ++i)
      seed.push_back(full.zone(z).view().sample(i));
    init.samples.push_back(std::move(seed));
  }
  return init;
}

JobParams job_with_deadline(Duration remaining_time) {
  JobParams job;
  job.remaining_compute = 6 * kHour;
  job.remaining_time = remaining_time;
  return job;
}

class ServeDaemon {
 public:
  ServeDaemon() {
    dir_ = fs::temp_directory_path() /
           ("redspot-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
    socket_ = (dir_ / "serve.sock").string();
    out_ = (dir_ / "daemon.out").string();
    pid_ = spawn({REDSPOT_SERVE_BIN, "--socket", socket_, "--threads", "4"},
                 out_);
  }

  ~ServeDaemon() {
    if (pid_ > 0 && ::waitpid(pid_, nullptr, WNOHANG) == 0) {
      ::kill(pid_, SIGKILL);
      wait_for(pid_);
    }
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  const std::string& socket() const { return socket_; }
  pid_t pid() const { return pid_; }
  std::string output() const { return slurp(out_); }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
  std::string socket_;
  std::string out_;
  pid_t pid_ = -1;
};

TEST(ServeIntegration, SocketAnswersAreBitIdenticalToOfflineOracle) {
  constexpr std::size_t kSeed = 320;
  constexpr std::size_t kTotal = 360;
  const ZoneTraceSet full = make_traces(kTotal);
  ServeDaemon daemon;
  ServeClient client(daemon.socket());

  EXPECT_EQ(client.trace_init(make_init(full, kSeed, kTotal)),
            full.start() + kPriceStep * static_cast<Duration>(kSeed));

  ModelSpec spec;
  spec.history_span = kDay;
  const std::uint64_t hash = client.register_spec(spec);
  EXPECT_EQ(hash, spec.spec_hash());

  std::vector<Money> prices(full.num_zones());
  std::uint64_t request_id = 0;
  for (std::size_t i = kSeed; i < kTotal; ++i) {
    for (std::size_t z = 0; z < full.num_zones(); ++z)
      prices[z] = full.zone(z).view().sample(i);
    client.tick(prices);
    if ((i - kSeed) % 8 != 0) continue;
    // The live trace now holds samples [0, i]; the daemon must answer
    // exactly what the offline Adaptive decision over that prefix says.
    const JobParams job = job_with_deadline(12 * kHour + (i % 3) * kHour);
    const AdviceMsg got = client.advise(++request_id, hash, job);
    const ZoneTraceSet prefix = full.window(
        full.start(), full.start() + kPriceStep * static_cast<Duration>(i + 1));
    const Advice want = advise_offline(spec, prefix, job);
    EXPECT_EQ(got.request_id, request_id);
    ASSERT_EQ(got.advice, want) << "diverged at sample " << i;
  }

  const StatsReplyMsg stats = client.stats();
  EXPECT_EQ(stats.ticks, kTotal - kSeed);
  EXPECT_EQ(stats.advises, request_id);
  EXPECT_EQ(stats.models, 1u);  // every request shared one model
  EXPECT_GE(stats.batches, request_id);
}

TEST(ServeIntegration, TenantsSharingASpecShareOneModel) {
  constexpr std::size_t kSeed = 300;
  const ZoneTraceSet full = make_traces(kSeed);
  ServeDaemon daemon;

  ServeClient feed(daemon.socket());
  feed.trace_init(make_init(full, kSeed, kSeed + 16));

  ModelSpec spec;
  spec.history_span = kDay;
  ServeClient tenant_a(daemon.socket());
  ServeClient tenant_b(daemon.socket());
  const std::uint64_t ha = tenant_a.register_spec(spec);
  const std::uint64_t hb = tenant_b.register_spec(spec);
  EXPECT_EQ(ha, hb);

  const Advice want = advise_offline(spec, full, job_with_deadline(12 * kHour));
  const AdviceMsg ra = tenant_a.advise(1, ha, job_with_deadline(12 * kHour));
  const AdviceMsg rb = tenant_b.advise(1, hb, job_with_deadline(12 * kHour));
  EXPECT_EQ(ra.advice, want);
  EXPECT_EQ(rb.advice, want);

  const StatsReplyMsg stats = feed.stats();
  EXPECT_EQ(stats.models, 1u);
}

TEST(ServeIntegration, ProtocolErrorsAnswerWithoutDroppingTheConnection) {
  const ZoneTraceSet full = make_traces(64);
  ServeDaemon daemon;
  ServeClient client(daemon.socket());

  // Tick before init: Error, connection stays up.
  EXPECT_THROW(client.tick({Money::cents(30), Money::cents(31)}), ServeError);
  client.trace_init(make_init(full, 64, 80));
  // Second init: Error.
  EXPECT_THROW(client.trace_init(make_init(full, 64, 80)), ServeError);
  // Advising an unregistered spec: Error carrying the request id.
  try {
    client.advise(55, /*spec_hash=*/0xdeadbeef, job_with_deadline(kDay));
    FAIL() << "unknown spec hash must be refused";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.request_id(), 55u);
  }
  // Zone-count mismatch on a tick: Error.
  EXPECT_THROW(client.tick({Money::cents(30)}), ServeError);
  // The connection survived all of the above.
  ModelSpec spec;
  spec.history_span = kDay;
  const std::uint64_t hash = client.register_spec(spec);
  const AdviceMsg r = client.advise(1, hash, job_with_deadline(12 * kHour));
  EXPECT_EQ(r.advice, advise_offline(spec, full, job_with_deadline(12 * kHour)));
}

TEST(ServeIntegration, SigtermMidLoadDrainsInFlightAdviceAndExits130) {
  constexpr std::size_t kSeed = 300;
  constexpr int kInFlight = 40;
  const ZoneTraceSet full = make_traces(kSeed);
  ServeDaemon daemon;

  ServeClient client(daemon.socket());
  client.trace_init(make_init(full, kSeed, kSeed + 8));
  ModelSpec spec;
  spec.history_span = kDay;
  const std::uint64_t hash = client.register_spec(spec);
  // Prove liveness once so the kill lands on a warmed-up daemon.
  client.advise(0, hash, job_with_deadline(12 * kHour));

  // Pile up a burst of requests, then SIGTERM while they are in flight.
  // Unix-socket sends land in the daemon's receive buffer synchronously,
  // so every one of these is "already submitted" when the signal hits —
  // the graceful drain owes us every answer.
  for (int i = 1; i <= kInFlight; ++i)
    client.advise_async(static_cast<std::uint64_t>(i), hash,
                        job_with_deadline(12 * kHour + (i % 4) * kHour));
  ASSERT_EQ(::kill(daemon.pid(), SIGTERM), 0);

  std::vector<bool> answered(kInFlight + 1, false);
  for (int i = 1; i <= kInFlight; ++i) {
    const AdviceMsg r = client.recv_advice();
    ASSERT_GT(r.request_id, 0u);
    ASSERT_LE(r.request_id, static_cast<std::uint64_t>(kInFlight));
    EXPECT_FALSE(answered[r.request_id]) << "duplicate response";
    answered[r.request_id] = true;
    const Advice want = advise_offline(
        spec, full,
        job_with_deadline(12 * kHour + (r.request_id % 4) * kHour));
    EXPECT_EQ(r.advice, want);
  }

  const int status = wait_for(daemon.pid());
  ASSERT_TRUE(WIFEXITED(status)) << daemon.output();
  EXPECT_EQ(WEXITSTATUS(status), 130) << daemon.output();
  // The final stats line made it out before exit.
  EXPECT_NE(daemon.output().find("drained"), std::string::npos)
      << daemon.output();
}

}  // namespace
}  // namespace redspot::serve
