// Engine tests: Algorithm 1's zone life-cycle, exact billing, checkpoint
// semantics, the deadline guarantee, policy behaviours and Large-bid.
//
// Traces are hand-built so every dollar is predictable; queue delay is 0
// unless a test says otherwise.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/engine.hpp"
#include "core/policies/large_bid.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::run_fixed;
using testing::single_zone;
using testing::small_experiment;
using testing::step_series;

constexpr std::size_t kStepsPerHour = 12;

// --- Happy path ------------------------------------------------------------------

TEST(Engine, ConstantCheapPriceRunsPureSpot) {
  // 4 h of compute on a $0.30 zone with generous slack: 5 started hours
  // (the app finishes during the 5th after 4 Periodic checkpoints).
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * kStepsPerHour)));
  const Experiment e = small_experiment(4.0, 0.5, 300);
  const RunResult r =
      run_fixed(market, e, PolicyKind::kPeriodic, Money::cents(81), {0});
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_FALSE(r.switched_to_on_demand);
  EXPECT_EQ(r.on_demand_cost, Money());
  // 4 h compute + 4 checkpoints x 300 s = 4h20m of wall time = 5 started
  // hours at $0.30 (the last one user-terminated at completion).
  EXPECT_EQ(r.total_cost, Money::dollars(1.50));
  EXPECT_EQ(r.checkpoints_committed, 4);
  EXPECT_EQ(r.out_of_bid_terminations, 0);
  EXPECT_EQ(r.finish_time, e.start + 4 * kHour + 4 * 300);
}

TEST(Engine, PriceAlwaysAboveBidGoesOnDemand) {
  const SpotMarket market =
      make_market(single_zone(constant_series(2.0, 24 * kStepsPerHour)));
  const Experiment e = small_experiment(4.0, 0.25, 300);
  const RunResult r =
      run_fixed(market, e, PolicyKind::kPeriodic, Money::cents(81), {0});
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_TRUE(r.switched_to_on_demand);
  EXPECT_EQ(r.spot_cost, Money());
  // From-scratch on-demand: 4 started hours at $2.40.
  EXPECT_EQ(r.total_cost, Money::dollars(9.60));
  // Switch happens when the slack (1 h) minus the reserved t_c has
  // drained; with nothing to checkpoint the reserve goes unused and the
  // run completes t_c before the deadline.
  EXPECT_EQ(r.finish_time, e.deadline_time() - 300);
}

TEST(Engine, HourBoundaryPricingLocksCycleStartRate) {
  // Price rises mid-hour but stays below the bid: the hour costs the
  // cycle-start rate, and the next hour the new rate.
  std::vector<std::pair<double, std::size_t>> segments = {
      {0.30, 6}, {0.60, kStepsPerHour}, {0.60, 18 * kStepsPerHour}};
  const SpotMarket market =
      make_market(single_zone(testing::step_series(
          {{0.30, 6}, {0.60, 30 * kStepsPerHour}})));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  EngineOptions opts;
  opts.record_line_items = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, opts);
  EXPECT_TRUE(r.met_deadline);
  // Hour 1 at $0.30 (rate at start), hours 2-3 at $0.60.
  EXPECT_EQ(r.total_cost, Money::dollars(0.30 + 0.60 + 0.60));
  ASSERT_GE(r.line_items.size(), 3u);
  EXPECT_EQ(r.line_items[0].amount, Money::dollars(0.30));
}

TEST(Engine, OutOfBidPartialHourIsFree) {
  // Zone dies 30 minutes in; no checkpoint possible; everything re-runs
  // later. The first partial hour must cost nothing.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 6},            // 30 min cheap
      {2.00, 6},            // 30 min out-of-bid
      {0.30, 40 * kStepsPerHour},
  })));
  const Experiment e = small_experiment(2.0, 1.0, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.out_of_bid_terminations, 1);
  // Restarted at t=1h from scratch (no checkpoint existed): 2 h compute +
  // 1 checkpoint = 3 started hours at $0.30. The killed half hour: free.
  EXPECT_EQ(r.total_cost, Money::dollars(0.90));
  EXPECT_EQ(r.full_outages, 1);
}

TEST(Engine, RestartResumesFromCheckpoint) {
  // Run 1 h (one Periodic checkpoint at the hour boundary), die, recover:
  // progress resumes from the checkpoint, not zero.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, kStepsPerHour + 3},  // up through the first ckpt
      {2.00, 3},                  // killed
      {0.30, 40 * kStepsPerHour},
  })));
  const Experiment e = small_experiment(3.0, 1.0, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GE(r.checkpoints_committed, 1);
  EXPECT_EQ(r.restarts, 1);  // restart loaded a checkpoint
  // Committed 55 min; finish = 1h30m (restart time) + t_r + remaining
  // compute + later checkpoints. Just bound it: well before from-scratch.
  EXPECT_LT(r.finish_time - e.start, 4 * kHour + 30 * kMinute);
}

TEST(Engine, QueueDelayDelaysBillingAndProgress) {
  const SpotMarket market = make_market(
      single_zone(constant_series(0.30, 24 * kStepsPerHour)),
      /*queue_delay=*/600);
  const Experiment e = small_experiment(1.0, 0.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kMarkovDaly,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.queue_delay_total, 600);
  // Started at t=600; one compute hour finishes at 600 + 3600 (+ any ckpt).
  EXPECT_GE(r.finish_time, e.start + 600 + kHour);
}

// --- Deadline guarantee -------------------------------------------------------------

TEST(Engine, ForcedCheckpointBanksProgressNearDeadline) {
  // Markov-Daly on a flat history schedules huge intervals; the engine's
  // deadline machinery must still bank progress instead of wasting the
  // zone. Pure spot completion expected (price constant, cheap).
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 40 * kStepsPerHour)));
  // 1 h slack: enough to absorb the forced-checkpoint overhead (the hard
  // guarantee spends t_c of slack per banked commit).
  const Experiment e = small_experiment(4.0, 0.25, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kMarkovDaly,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_FALSE(r.switched_to_on_demand);
  EXPECT_EQ(r.on_demand_cost, Money());
  // The engine banked progress with forced checkpoints (Markov-Daly saw a
  // flat history and never scheduled its own).
  EXPECT_GE(r.checkpoints_committed, 3);
}

TEST(Engine, SlackSmallerThanOverheadsStillMeetsDeadline) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 40 * kStepsPerHour)));
  Experiment e = small_experiment(2.0, 0.0, 300);
  e.deadline = e.app.total_compute + 100;  // < t_c + t_r
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_TRUE(r.switched_to_on_demand);  // no room for any spot gamble
}

TEST(Engine, AdversarialSpikeAtSwitchStillMeetsDeadline) {
  // Zone runs cheap, then turns hostile exactly around the deadline
  // margin; the engine must bank what it can and finish on-demand by D.
  for (int hostile_hour = 1; hostile_hour <= 4; ++hostile_hour) {
    const SpotMarket market = make_market(single_zone(step_series({
        {0.30, static_cast<std::size_t>(hostile_hour) * kStepsPerHour},
        {2.30, 60 * kStepsPerHour},
    })));
    const Experiment e = small_experiment(4.0, 0.20, 300);
    const RunResult r = run_fixed(market, e, PolicyKind::kMarkovDaly,
                                  Money::cents(81), {0});
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.met_deadline) << "hostile_hour=" << hostile_hour;
  }
}

// --- Redundancy ----------------------------------------------------------------------

TEST(Engine, RedundantZonesAllStartWhenNoneActive) {
  const SpotMarket market = make_market(testing::zones({
      constant_series(0.30, 24 * kStepsPerHour),
      constant_series(0.35, 24 * kStepsPerHour),
      constant_series(0.40, 24 * kStepsPerHour),
  }));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0, 1, 2});
  EXPECT_TRUE(r.met_deadline);
  // All three zones start immediately and are billed: cost must be about
  // 3x the single-zone cost for this trace.
  EXPECT_EQ(r.total_cost, Money::dollars(3 * (0.30 + 0.35 + 0.40)));
}

TEST(Engine, WaitingZoneJoinsAtCheckpoint) {
  // Zone 1 becomes eligible at t=30min while zone 0 is running; the
  // algorithm starts it only at the next checkpoint commit (the Periodic
  // hour boundary).
  const SpotMarket market = make_market(testing::zones({
      constant_series(0.30, 24 * kStepsPerHour),
      step_series({{2.0, 6}, {0.40, 24 * kStepsPerHour - 6}}),
  }));
  const Experiment e = small_experiment(3.0, 0.5, 300);
  EngineOptions options;
  options.record_timeline = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0, 1}, options);
  EXPECT_TRUE(r.met_deadline);
  // Find zone 1's instance start: it must be at/after the first ckpt
  // commit (t ~ 1 h), not at its eligibility instant (30 min).
  SimTime zone1_start = kNever;
  SimTime first_commit = kNever;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.kind == TimelineKind::kCheckpointDone && first_commit == kNever)
      first_commit = ev.time;
    if (ev.zone == 1 && ev.kind == TimelineKind::kInstanceRequested &&
        zone1_start == kNever)
      zone1_start = ev.time;
  }
  ASSERT_NE(first_commit, kNever);
  ASSERT_NE(zone1_start, kNever);
  EXPECT_GE(zone1_start, first_commit);
  EXPECT_GT(zone1_start, e.start + 30 * kMinute);
}

TEST(Engine, SurvivesSingleZoneOutageWithRedundancy) {
  // Zone 0 dies for two hours; zone 1 carries the run; no on-demand.
  const SpotMarket market = make_market(testing::zones({
      step_series({{0.30, kStepsPerHour},
                   {2.0, 2 * kStepsPerHour},
                   {0.30, 24 * kStepsPerHour}}),
      constant_series(0.40, 27 * kStepsPerHour),
  }));
  const Experiment e = small_experiment(3.0, 0.34, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0, 1});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_FALSE(r.switched_to_on_demand);
  EXPECT_EQ(r.full_outages, 0);
  EXPECT_EQ(r.out_of_bid_terminations, 1);
}

// --- Policy behaviours ------------------------------------------------------------------

TEST(Engine, PeriodicCheckpointsOncePerBillingHour) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * kStepsPerHour)));
  const Experiment e = small_experiment(5.0, 0.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  // 5 h of compute + ckpt overhead -> ~5-6 billing hours, one ckpt per
  // boundary except the final partial hour.
  EXPECT_GE(r.checkpoints_committed, 5);
  EXPECT_LE(r.checkpoints_committed, 6);
}

TEST(Engine, RisingEdgeCheckpointsOnUpwardMove) {
  // Exactly one upward price movement below the bid: one checkpoint.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 6},
      {0.40, 42 * kStepsPerHour},  // single rising edge at t=30min
  })));
  Experiment e = small_experiment(2.0, 1.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kRisingEdge,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.checkpoints_committed, 1);
}

TEST(Engine, ThresholdIgnoresEdgesFarBelowBid) {
  // PriceThresh = (S_min + B)/2 = (0.30 + 2.40)/2 = 1.35: a rise to 0.40
  // must NOT trigger; a later rise to 1.50 must.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 6},
      {0.40, 6},                    // edge below PriceThresh: ignored
      {1.50, 6},                    // edge above PriceThresh: checkpoint
      {0.40, 42 * kStepsPerHour},
  })));
  Experiment e = small_experiment(2.0, 1.5, 300);
  e.history_span = kHour;  // S_min from the trace window
  EngineOptions options;
  options.record_timeline = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kThreshold,
                                Money::dollars(2.40), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  SimTime first_ckpt = kNever;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.kind == TimelineKind::kCheckpointStart) {
      first_ckpt = ev.time;
      break;
    }
  }
  ASSERT_NE(first_ckpt, kNever);
  EXPECT_EQ(first_ckpt, e.start + 12 * kPriceStep);  // at the 1.50 edge
}

// --- Large-bid -----------------------------------------------------------------------------

TEST(Engine, LargeBidManualStopAndResume) {
  // Price exceeds L for hours 2-3; Large-bid must checkpoint near the end
  // of hour 1... (price crosses L mid-hour-1), pay that hour, sit out, and
  // resume when the price returns below L.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 9},                      // 45 min cheap
      {1.50, 2 * kStepsPerHour + 3},  // above L, below B=$100
      {0.30, 40 * kStepsPerHour},
  })));
  const Experiment e = small_experiment(3.0, 1.0, 300);
  FixedStrategy strategy(LargeBidPolicy::large_bid(), {0},
                         std::make_unique<LargeBidPolicy>(Money::cents(81)));
  EngineOptions options;
  options.record_line_items = true;
  Engine engine(market, e, strategy, options);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.out_of_bid_terminations, 0);  // B = $100: never out-of-bid
  // The point of the threshold: the price crossed L mid-hour, the ongoing
  // hour was still billed at its cheap start rate, the instance
  // checkpointed and stopped at the boundary — NO hour is ever billed at
  // the $1.50 rate.
  for (const LineItem& item : r.line_items)
    EXPECT_LE(item.amount, Money::dollars(1.0)) << to_string(item.kind);
  EXPECT_GE(r.checkpoints_committed, 1);
  // It sat out the expensive window instead of computing through it.
  EXPECT_GT(r.finish_time, e.start + 3 * kHour + 300);
}

TEST(Engine, LargeBidNaiveRidesTheSpike) {
  // Without a threshold the instance rides the $1.50 hours.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 9},
      {1.50, 2 * kStepsPerHour + 3},
      {0.30, 40 * kStepsPerHour},
  })));
  const Experiment e = small_experiment(3.0, 1.0, 300);
  FixedStrategy strategy(
      LargeBidPolicy::large_bid(), {0},
      std::make_unique<LargeBidPolicy>(LargeBidPolicy::no_threshold()));
  Engine engine(market, e, strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  // Rode straight through: no manual stops, finished earlier but paid
  // ~2 expensive hours.
  EXPECT_GT(r.total_cost, Money::dollars(3.0));
}

// --- Accounting and options -------------------------------------------------------------------

TEST(Engine, LineItemsSumToTotal) {
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, kStepsPerHour + 3},
      {2.00, 6},
      {0.35, 40 * kStepsPerHour},
  })));
  const Experiment e = small_experiment(3.0, 0.5, 300);
  EngineOptions options;
  options.record_line_items = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  Money sum;
  for (const LineItem& item : r.line_items) sum += item.amount;
  EXPECT_EQ(sum, r.total_cost);
}

TEST(Engine, TimelineDisabledByDefault) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * kStepsPerHour)));
  const RunResult r =
      run_fixed(market, small_experiment(1.0, 0.5, 300),
                PolicyKind::kPeriodic, Money::cents(81), {0});
  EXPECT_TRUE(r.timeline.empty());
  EXPECT_TRUE(r.line_items.empty());
}

TEST(Engine, DeterministicAcrossRuns) {
  const SpotMarket market = make_market(
      single_zone(step_series({{0.30, kStepsPerHour}, {2.0, 6},
                               {0.30, 40 * kStepsPerHour}})),
      /*queue_delay=*/300);
  const Experiment e = small_experiment(3.0, 0.5, 300);
  const RunResult a = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  const RunResult b = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.checkpoints_committed, b.checkpoints_committed);
}

TEST(Engine, ValidatesConfiguration) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * kStepsPerHour)));
  const Experiment e = small_experiment(1.0, 0.5, 300);
  {
    FixedStrategy s(Money::cents(81), {7}, make_policy(PolicyKind::kPeriodic));
    Engine engine(market, e, s);
    EXPECT_THROW(engine.run(), CheckFailure);  // zone out of range
  }
  {
    FixedStrategy s(Money::cents(81), {0, 0},
                    make_policy(PolicyKind::kPeriodic));
    Engine engine(market, e, s);
    EXPECT_THROW(engine.run(), CheckFailure);  // duplicate zone
  }
  {
    FixedStrategy s(Money::cents(81), {0},
                    make_policy(PolicyKind::kPeriodic));
    Engine engine(market, e, s);
    (void)engine.run();
    EXPECT_THROW(engine.run(), CheckFailure);  // run() is single-shot
  }
}

TEST(Engine, RejectsTraceNotCoveringDeadline) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 12)));  // 1 h of trace
  const Experiment e = small_experiment(4.0, 0.5, 300);
  FixedStrategy s(Money::cents(81), {0}, make_policy(PolicyKind::kPeriodic));
  EXPECT_THROW(Engine(market, e, s), CheckFailure);
}

TEST(Engine, OnDemandBaseline) {
  const Experiment e = small_experiment(20.0, 0.15, 300);
  const RunResult r = run_on_demand_baseline(e, Money::dollars(2.40));
  EXPECT_EQ(r.total_cost, Money::dollars(48.00));
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.finish_time, e.start + 20 * kHour);
}

TEST(Engine, PartialHourOnDemandRoundsUp) {
  const Experiment e = small_experiment(1.25, 0.5, 300);
  const RunResult r = run_on_demand_baseline(e, Money::dollars(2.40));
  EXPECT_EQ(r.total_cost, Money::dollars(4.80));  // 2 started hours
}

}  // namespace
}  // namespace redspot
