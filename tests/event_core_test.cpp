// The typed event calendar: strict FIFO tie-breaking at equal timestamps
// (never by kind), cancel-and-zero handles, lazy-deletion compaction
// bounds, observer dispatch — and the engine-level regression pinning the
// relative order of a coincident (deadline-trigger, hour-boundary,
// price-tick) instant, which byte-identity with the historical engine
// depends on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/engine.hpp"
#include "core/events/event_queue.hpp"
#include "core/events/trace_recorder.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::run_fixed;
using testing::single_zone;

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue queue(100);
  std::vector<int> order;
  queue.schedule_at(EventKind::kPriceTick, kNoZone, 300,
                    [&order] { order.push_back(3); });
  queue.schedule_at(EventKind::kPriceTick, kNoZone, 100,
                    [&order] { order.push_back(1); });
  queue.schedule_at(EventKind::kPriceTick, kNoZone, 200,
                    [&order] { order.push_back(2); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 300);
  EXPECT_EQ(queue.executed_count(), 3u);
  EXPECT_FALSE(queue.step());  // empty calendar
}

TEST(EventQueue, EqualTimestampsAreStrictlyFifoNeverByKind) {
  EventQueue queue(0);
  std::vector<EventKind> order;
  // Scheduled in an order a kind-priority queue would rearrange.
  const EventKind kinds[] = {
      EventKind::kZoneCompletion, EventKind::kPriceTick,
      EventKind::kDeadlineTrigger, EventKind::kCycleBoundary,
      EventKind::kDoom,
  };
  for (const EventKind kind : kinds) {
    queue.schedule_at(kind, kNoZone, 50,
                      [&order, kind] { order.push_back(kind); });
  }
  while (queue.step()) {
  }
  EXPECT_EQ(order, std::vector<EventKind>(std::begin(kinds),
                                          std::end(kinds)));
}

TEST(EventQueue, FifoHoldsAcrossInterleavedSchedules) {
  EventQueue queue(0);
  std::vector<int> order;
  queue.schedule_at(EventKind::kPriceTick, 0, 10,
                    [&] { order.push_back(1); });
  queue.schedule_at(EventKind::kPriceTick, 0, 5, [&] {
    order.push_back(0);
    // Scheduled mid-run for the same instant as an existing entry: the
    // older entry still fires first.
    queue.schedule_at(EventKind::kDoom, 0, 10, [&] { order.push_back(2); });
  });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelZeroesTheHandleAndSkipsTheEvent) {
  EventQueue queue(0);
  int fired = 0;
  EventId keep = queue.schedule_at(EventKind::kPriceTick, 0, 10,
                                   [&fired] { ++fired; });
  EventId drop = queue.schedule_at(EventKind::kDoom, 0, 10,
                                   [&fired] { fired += 100; });
  EXPECT_TRUE(queue.pending(drop));
  queue.cancel(drop);
  EXPECT_EQ(drop, 0u);
  EXPECT_FALSE(queue.pending(drop));
  EXPECT_EQ(queue.pending_count(), 1u);

  // Cancelling a zero handle is the universal no-op.
  queue.cancel(drop);
  EXPECT_EQ(drop, 0u);

  while (queue.step()) {
  }
  EXPECT_EQ(fired, 1);
  // Cancelling after the event ran is also a no-op.
  queue.cancel(keep);
  EXPECT_EQ(keep, 0u);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue(1000);
  EXPECT_THROW(
      queue.schedule_at(EventKind::kPriceTick, kNoZone, 999, [] {}),
      CheckFailure);
  // schedule_in is relative to now and never in the past.
  EventId id = queue.schedule_in(EventKind::kPriceTick, kNoZone, 0, [] {});
  EXPECT_TRUE(queue.pending(id));
}

TEST(EventQueue, CompactionBoundsTheBacklogUnderCancelChurn) {
  EventQueue queue(0);
  std::vector<EventId> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(queue.schedule_at(EventKind::kPriceTick, 0, 10 + i, [] {}));
  }
  EXPECT_EQ(queue.backlog(), 300u);
  for (int i = 0; i < 250; ++i) queue.cancel(ids[static_cast<size_t>(i)]);
  EXPECT_EQ(queue.pending_count(), 50u);
  // Compaction fires whenever cancelled entries outnumber live ones, so
  // the backlog never exceeds twice the live count (the exact value
  // depends on where the compactions landed during the churn).
  EXPECT_LE(queue.backlog(), 2 * queue.pending_count());
  std::size_t ran = 0;
  while (queue.step()) ++ran;
  EXPECT_EQ(ran, 50u);
}

struct EventLog final : EngineObserver {
  std::vector<Event> events;
  void on_event(const Event& event) override { events.push_back(event); }
};

TEST(EventQueue, ObserversSeeEveryDispatchWithKindZoneAndTime) {
  EventQueue queue(0);
  EventLog log;
  EventLog log2;
  queue.add_observer(&log);
  queue.add_observer(&log2);
  queue.schedule_at(EventKind::kCycleBoundary, 2, 40, [] {});
  queue.schedule_at(EventKind::kPriceTick, kNoZone, 30, [] {});
  while (queue.step()) {
  }
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0].time, 30);
  EXPECT_EQ(log.events[0].kind, EventKind::kPriceTick);
  EXPECT_EQ(log.events[0].zone, kNoZone);
  EXPECT_EQ(log.events[1].time, 40);
  EXPECT_EQ(log.events[1].kind, EventKind::kCycleBoundary);
  EXPECT_EQ(log.events[1].zone, 2u);
  // seq records scheduling order (the FIFO tie-break key), not dispatch
  // order: the boundary was scheduled first, the tick fired first.
  EXPECT_EQ(log.events[0].seq, 1u);
  EXPECT_EQ(log.events[1].seq, 0u);
  ASSERT_EQ(log2.events.size(), 2u);
}

// --- Engine-level coincidence regression -----------------------------------

// Pins the historical simultaneity discipline for the worst coincidence:
// deadline trigger, billing-hour boundary and price tick all landing on
// the same instant. The relative order follows from *when* each was armed
// (trigger before the run loop, boundary at instance start, tick one
// price step ahead), not from any kind priority — so the trigger observes
// pre-boundary billing and the pre-tick price.
TEST(EngineCoincidence, TriggerBoundaryAndTickAtTheSameInstant) {
  // C = 2 h, t_c = t_r = 300 s, deadline 11100 s: with nothing committed,
  // switch_time = 11100 - 7200 - 300 = 3600 — exactly the first cycle
  // boundary AND a price-tick instant (3600 = 12 price steps).
  Experiment e;
  e.app = AppModel{"test-app", 2 * kHour, 1, 8};
  e.costs = CheckpointCosts{300, 300};
  e.start = 0;
  e.deadline = 2 * kHour + 3900;
  e.history_span = 2 * kHour;
  e.validate();
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 48)));

  FixedStrategy strategy(Money::cents(81), {0},
                         make_policy(PolicyKind::kRisingEdge));
  Engine engine(market, e, strategy, {});
  EventTraceRecorder trace;
  engine.add_observer(&trace);
  const RunResult r = engine.run();

  std::vector<std::string> at_3600;
  for (const std::string& line : trace.lines()) {
    if (line.rfind("E 3600 ", 0) == 0) at_3600.push_back(line);
  }
  const std::vector<std::string> expected = {
      "E 3600 deadline-trigger",
      "E 3600 cycle-boundary z0",
      "E 3600 price-tick",
  };
  EXPECT_EQ(at_3600, expected);

  // The trigger fired first and forced a checkpoint of the leader's 3600 s
  // of unprotected progress (rising-edge never checkpoints on a flat
  // price); the second forced write at 6900 covers the rest.
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_FALSE(r.switched_to_on_demand);
  EXPECT_EQ(r.checkpoints_committed, 2);
  EXPECT_EQ(r.finish_time, 7800);
  EXPECT_EQ(r.total_cost, Money::cents(90));  // 3 started hours at $0.30
}

// The same scenario through the plain result API must agree with the
// historical engine's numbers when the trigger instant is NOT coincident
// (switch_time one step off the boundary) — guarding against accidental
// re-ordering sensitivity.
TEST(EngineCoincidence, NearMissTriggerIsEquivalent) {
  Experiment e;
  e.app = AppModel{"test-app", 2 * kHour, 1, 8};
  e.costs = CheckpointCosts{300, 300};
  e.start = 0;
  e.deadline = 2 * kHour + 4200;  // switch_time 3900: between boundaries
  e.history_span = 2 * kHour;
  e.validate();
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 48)));
  const RunResult r = run_fixed(market, e, PolicyKind::kRisingEdge,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.checkpoints_committed, 2);
}

}  // namespace
}  // namespace redspot
