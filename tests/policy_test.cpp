// Direct unit tests of the policy objects against a scripted EngineView —
// no engine in the loop, so each CheckpointCondition() /
// ScheduleNextCheckpoint() contract is pinned down in isolation.
#include <gtest/gtest.h>

#include <set>

#include "core/policies/index_track.hpp"
#include "core/policies/large_bid.hpp"
#include "core/policies/markov_daly.hpp"
#include "core/policies/periodic.hpp"
#include "core/policies/randomized_bid.hpp"
#include "core/policies/rising_edge.hpp"
#include "core/policies/threshold.hpp"
#include "core/policy.hpp"
#include "market/regime.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::step_series;

/// Scripted EngineView: every observable is a plain data member.
class FakeView final : public EngineView {
 public:
  FakeView()
      : market_(testing::make_market(
            testing::single_zone(constant_series(0.30, 48)))),
        experiment_(testing::small_experiment(4.0, 0.5, 300)) {}

  SimTime now() const override { return now_; }
  const Experiment& experiment() const override { return experiment_; }
  const SpotMarket& market() const override { return market_; }
  Money bid() const override { return bid_; }
  std::span<const std::size_t> zone_ids() const override { return zones_; }
  bool zone_running(std::size_t z) const override { return running_[z]; }
  bool any_zone_running() const override {
    for (std::size_t z : zones_)
      if (running_[z]) return true;
    return false;
  }
  Money price(std::size_t z) const override { return prices_[z]; }
  Money previous_price(std::size_t z) const override {
    return previous_prices_[z];
  }
  PriceView history(std::size_t) const override { return history_.view(); }
  Money min_observed_price(std::size_t) const override {
    return history_.min_price();
  }
  Duration committed_progress() const override { return committed_; }
  Duration zone_progress(std::size_t z) const override {
    return progress_[z];
  }
  Duration leading_progress() const override {
    Duration best = committed_;
    for (std::size_t z : zones_)
      if (running_[z]) best = std::max(best, progress_[z]);
    return best;
  }
  SimTime leading_compute_since() const override { return compute_since_; }
  SimTime billing_cycle_end(std::size_t z) const override {
    return cycle_end_[z];
  }
  const MarketRegime& regime() const override { return regime_; }

  // Script state (public on purpose — it's a fake).
  SimTime now_ = 10'000;
  SpotMarket market_;
  Experiment experiment_;
  Money bid_ = Money::cents(81);
  std::vector<std::size_t> zones_{0};
  bool running_[3] = {true, false, false};
  Money prices_[3] = {Money::dollars(0.30), Money::dollars(0.30),
                      Money::dollars(0.30)};
  Money previous_prices_[3] = {Money::dollars(0.30), Money::dollars(0.30),
                               Money::dollars(0.30)};
  PriceSeries history_ = constant_series(0.30, 24);
  Duration committed_ = 0;
  Duration progress_[3] = {1000, 0, 0};
  SimTime compute_since_ = 9'000;
  SimTime cycle_end_[3] = {12'000, 0, 0};
  MarketRegime regime_ = MarketRegime::classic_2012();
};

// --- Periodic --------------------------------------------------------------------

TEST(PeriodicPolicy, SchedulesCheckpointBeforeLeaderBoundary) {
  FakeView view;
  PeriodicPolicy policy;
  EXPECT_FALSE(policy.checkpoint_condition(view));
  // Boundary at 12000, t_c = 300: checkpoint starts at 11700.
  EXPECT_EQ(policy.schedule_next_checkpoint(view), 11'700);
}

TEST(PeriodicPolicy, SkipsBoundaryCloserThanTc) {
  FakeView view;
  view.now_ = 11'800;  // within t_c of the boundary
  PeriodicPolicy policy;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), 11'700 + kHour);
}

TEST(PeriodicPolicy, UsesLeadingZoneBoundary) {
  FakeView view;
  view.zones_ = {0, 1};
  view.running_[1] = true;
  view.progress_[1] = 5'000;  // zone 1 leads
  view.cycle_end_[1] = 13'500;
  PeriodicPolicy policy;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), 13'200);
}

TEST(PeriodicPolicy, NoZoneRunningMeansNoSchedule) {
  FakeView view;
  view.running_[0] = false;
  PeriodicPolicy policy;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), kNever);
}

// --- Rising Edge ------------------------------------------------------------------

TEST(RisingEdgePolicy, FiresOnUpwardMove) {
  FakeView view;
  view.prices_[0] = Money::dollars(0.35);
  view.previous_prices_[0] = Money::dollars(0.30);
  RisingEdgePolicy policy;
  EXPECT_TRUE(policy.checkpoint_condition(view));
  EXPECT_EQ(policy.schedule_next_checkpoint(view), kNever);
}

TEST(RisingEdgePolicy, IgnoresFlatAndDownwardMoves) {
  FakeView view;
  RisingEdgePolicy policy;
  EXPECT_FALSE(policy.checkpoint_condition(view));  // flat
  view.prices_[0] = Money::dollars(0.25);
  EXPECT_FALSE(policy.checkpoint_condition(view));  // down
}

TEST(RisingEdgePolicy, IgnoresEdgesOnIdleZones) {
  FakeView view;
  view.running_[0] = false;
  view.prices_[0] = Money::dollars(0.50);
  RisingEdgePolicy policy;
  EXPECT_FALSE(policy.checkpoint_condition(view));
}

// --- Threshold ----------------------------------------------------------------------

TEST(ThresholdPolicy, RequiresEdgeAbovePriceThresh) {
  FakeView view;
  view.bid_ = Money::dollars(2.40);
  view.history_ = constant_series(0.30, 24);  // S_min = 0.30
  // PriceThresh = (0.30 + 2.40)/2 = 1.35.
  ThresholdPolicy policy;
  view.previous_prices_[0] = Money::dollars(0.30);
  view.prices_[0] = Money::dollars(1.00);  // edge below threshold
  EXPECT_FALSE(policy.checkpoint_condition(view));
  view.prices_[0] = Money::dollars(1.40);  // edge above threshold
  EXPECT_TRUE(policy.checkpoint_condition(view));
}

TEST(ThresholdPolicy, SchedulesTimeThresholdFromComputeStart) {
  FakeView view;
  view.history_ = step_series({{0.30, 12}, {1.0, 2}, {0.30, 10}});
  ThresholdPolicy policy;
  const SimTime t = policy.schedule_next_checkpoint(view);
  ASSERT_NE(t, kNever);
  EXPECT_GT(t, view.now_);
  // The deadline is measured from the leading zone's compute start.
  view.compute_since_ += 500;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), t + 500);
}

TEST(ThresholdPolicy, NoScheduleWithoutRunningZone) {
  FakeView view;
  view.running_[0] = false;
  view.compute_since_ = kNever;
  ThresholdPolicy policy;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), kNever);
}

// --- Markov-Daly ---------------------------------------------------------------------

TEST(MarkovDalyPolicy, SchedulesDalyIntervalAhead) {
  FakeView view;
  // Flappy history: finite uptime, finite interval.
  view.history_ = step_series(
      {{0.30, 4}, {1.0, 2}, {0.30, 4}, {1.0, 2}, {0.30, 4}, {1.0, 2},
       {0.30, 4}, {1.0, 2}});
  MarkovDalyPolicy policy;
  EXPECT_FALSE(policy.checkpoint_condition(view));
  const SimTime t = policy.schedule_next_checkpoint(view);
  ASSERT_NE(t, kNever);
  EXPECT_GT(t, view.now_);
  EXPECT_LT(t, view.now_ + kDay);
}

TEST(MarkovDalyPolicy, CombinedUptimeGrowsWithZones) {
  FakeView view;
  view.history_ = step_series(
      {{0.30, 4}, {1.0, 2}, {0.30, 4}, {1.0, 2}, {0.30, 4}, {1.0, 2}});
  MarkovDalyPolicy policy;
  const Duration one = policy.combined_uptime(view);
  view.zones_ = {0, 1};
  view.running_[1] = true;
  const Duration two = policy.combined_uptime(view);
  EXPECT_GT(one, 0);
  EXPECT_GE(two, 2 * one - kPriceStep);  // identical zones: ~double
}

TEST(MarkovDalyPolicy, NoZonesMeansNever) {
  FakeView view;
  view.running_[0] = false;
  MarkovDalyPolicy policy;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), kNever);
}

// --- Large-bid ------------------------------------------------------------------------

TEST(LargeBidPolicy, StopsAndResumesAroundThreshold) {
  FakeView view;
  LargeBidPolicy policy(Money::cents(81));
  EXPECT_TRUE(policy.wants_pre_boundary_checks());
  view.prices_[0] = Money::dollars(0.90);
  EXPECT_TRUE(policy.should_manual_stop(view, 0));
  EXPECT_FALSE(policy.should_resume(view, 0));
  view.prices_[0] = Money::dollars(0.81);
  EXPECT_FALSE(policy.should_manual_stop(view, 0));  // S == L: keep
  EXPECT_TRUE(policy.should_resume(view, 0));
}

TEST(LargeBidPolicy, NeverCheckpointsOnItsOwn) {
  FakeView view;
  LargeBidPolicy policy(Money::cents(81));
  EXPECT_FALSE(policy.checkpoint_condition(view));
  EXPECT_EQ(policy.schedule_next_checkpoint(view), kNever);
}

TEST(LargeBidPolicy, Constants) {
  EXPECT_EQ(LargeBidPolicy::large_bid(), Money::dollars(100.0));
  LargeBidPolicy naive(LargeBidPolicy::no_threshold());
  FakeView view;
  view.prices_[0] = Money::dollars(20.02);  // the worst observed price
  EXPECT_FALSE(naive.should_manual_stop(view, 0));
}

TEST(LargeBidPolicy, PerSecondBillingDisablesManualStops) {
  // The manual stop exists to dodge paying a full hour at a spiked rate;
  // per-second billing removes that commitment, so the policy rides
  // through excursions instead of churning stop/restart cycles.
  FakeView view;
  view.regime_ = MarketRegime::per_second();
  LargeBidPolicy policy(Money::cents(81));
  view.prices_[0] = Money::dollars(0.90);  // above L: classic would stop
  EXPECT_FALSE(policy.should_manual_stop(view, 0));
  view.regime_ = MarketRegime::classic_2012();
  EXPECT_TRUE(policy.should_manual_stop(view, 0));
}

// --- Randomized-bid ------------------------------------------------------------------

TEST(RandomizedBidPolicy, DrawIsDeterministicQuantizedAndInRange) {
  const Money lo = Money::cents(27);
  const Money hi = Money::dollars(2.40);
  EXPECT_EQ(RandomizedBidPolicy::draw_bid(42, lo, hi),
            RandomizedBidPolicy::draw_bid(42, lo, hi));
  std::set<std::int64_t> draws;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Money d = RandomizedBidPolicy::draw_bid(seed, lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
    EXPECT_EQ(d.micros() % 1000, 0) << "off the $0.001 bid grid";
    draws.insert(d.micros());
  }
  // The draw is a distribution, not a point.
  EXPECT_GT(draws.size(), 20u);
  // Skewed toward the ceiling: most draws land in the upper half.
  const std::int64_t mid = (lo.micros() + hi.micros()) / 2;
  std::size_t upper = 0;
  for (const std::int64_t d : draws)
    if (d > mid) ++upper;
  EXPECT_GT(upper * 2, draws.size());
}

TEST(RandomizedBidPolicy, ChecksOnRisingTickIntoDangerBand) {
  FakeView view;
  view.bid_ = Money::cents(81);  // danger band starts at 0.8 * 0.81 = 0.648
  RandomizedBidPolicy policy;
  view.previous_prices_[0] = Money::dollars(0.30);
  view.prices_[0] = Money::dollars(0.70);  // rising into the band
  EXPECT_TRUE(policy.checkpoint_condition(view));
  view.prices_[0] = Money::dollars(0.60);  // rising, still below the band
  EXPECT_FALSE(policy.checkpoint_condition(view));
  view.previous_prices_[0] = Money::dollars(0.75);
  view.prices_[0] = Money::dollars(0.70);  // in the band but falling
  EXPECT_FALSE(policy.checkpoint_condition(view));
  view.previous_prices_[0] = Money::dollars(0.30);
  view.running_[0] = false;  // idle zones can't lose progress
  EXPECT_FALSE(policy.checkpoint_condition(view));
}

TEST(RandomizedBidPolicy, KeepsThePeriodicBoundaryBackstop) {
  FakeView view;
  RandomizedBidPolicy policy;
  // Boundary at 12000, t_c = 300: same pre-boundary slot as Periodic.
  EXPECT_EQ(policy.schedule_next_checkpoint(view), 11'700);
  view.running_[0] = false;
  EXPECT_EQ(policy.schedule_next_checkpoint(view), kNever);
}

// --- Index-track ---------------------------------------------------------------------

TEST(IndexTrackPolicy, TracksTheCheapestLanesWithDeterministicTies) {
  FakeView view;
  view.zones_ = {0, 1, 2};
  view.prices_[0] = Money::dollars(0.30);
  view.prices_[1] = Money::dollars(0.25);
  view.prices_[2] = Money::dollars(0.40);
  IndexTrackPolicy policy(/*target_active=*/1);
  EXPECT_TRUE(policy.wants_pre_boundary_checks());
  EXPECT_FALSE(policy.in_index(view, 0));
  EXPECT_TRUE(policy.in_index(view, 1));
  EXPECT_TRUE(policy.should_manual_stop(view, 0));
  EXPECT_TRUE(policy.should_resume(view, 1));
  // Ties break to the lower zone index, so the index stays a function.
  view.prices_[0] = Money::dollars(0.25);
  EXPECT_TRUE(policy.in_index(view, 0));
  EXPECT_FALSE(policy.in_index(view, 1));
  // A wider index admits both.
  IndexTrackPolicy two(/*target_active=*/2);
  EXPECT_TRUE(two.in_index(view, 1));
  EXPECT_FALSE(two.in_index(view, 2));
}

TEST(IndexTrackPolicy, LaneScaleNormalizesAcrossInstanceTypes) {
  FakeView view;
  view.zones_ = {0, 1};
  view.prices_[0] = Money::dollars(0.30);  // scale 1.0 -> 0.30
  view.prices_[1] = Money::dollars(0.20);  // scale 0.5 -> 0.40 normalized
  IndexTrackPolicy policy(1, {1.0, 0.5});
  EXPECT_TRUE(policy.in_index(view, 0));
  EXPECT_FALSE(policy.in_index(view, 1));
  // Without scales the nominally cheaper lane would win.
  IndexTrackPolicy unscaled(1);
  EXPECT_FALSE(unscaled.in_index(view, 0));
  EXPECT_TRUE(unscaled.in_index(view, 1));
}

// --- Factory -------------------------------------------------------------------------

TEST(PolicyFactory, MakesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly,
        PolicyKind::kRisingEdge, PolicyKind::kThreshold}) {
    const auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), to_string(kind));
    EXPECT_FALSE(policy->wants_pre_boundary_checks());
  }
}

TEST(PolicyFactory, MakesTheZooEntries) {
  const auto randomized = make_policy(PolicyKind::kRandomizedBid);
  ASSERT_NE(randomized, nullptr);
  EXPECT_EQ(randomized->name(), "randomized-bid");
  const auto tracker = make_policy(PolicyKind::kIndexTrack);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->name(), "index-track");
  EXPECT_TRUE(tracker->wants_pre_boundary_checks());
}

}  // namespace
}  // namespace redspot
