// Unit tests for the shared byte-accounted LRU core (common/lru.hpp) and
// its EnsembleCache instantiation staying behaviorally identical to the
// pre-extraction cache.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lru.hpp"

namespace redspot {
namespace {

using Cache = LruByteCache<std::uint64_t, const std::string>;

std::shared_ptr<const std::string> val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruByteCache, MissThenHit) {
  Cache cache(1024);
  EXPECT_EQ(cache.lookup(1), nullptr);
  cache.store(1, val("a"), 10);
  const auto got = cache.lookup(1);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "a");
  const LruStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 10u);
}

TEST(LruByteCache, FirstWriterWins) {
  Cache cache(1024);
  cache.store(7, val("first"), 10);
  const auto retained = cache.store(7, val("second"), 10);
  ASSERT_NE(retained, nullptr);
  EXPECT_EQ(*retained, "first");
  EXPECT_EQ(*cache.lookup(7), "first");
  EXPECT_EQ(cache.stats().bytes, 10u);  // second store not double-counted
}

TEST(LruByteCache, EvictsLeastRecentlyUsed) {
  Cache cache(30);
  cache.store(1, val("a"), 10);
  cache.store(2, val("b"), 10);
  cache.store(3, val("c"), 10);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.lookup(1), nullptr);
  cache.store(4, val("d"), 10);
  EXPECT_EQ(cache.lookup(2), nullptr);  // evicted
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_NE(cache.lookup(4), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruByteCache, OversizedEntryNotRetained) {
  Cache cache(30);
  cache.store(1, val("a"), 10);
  const auto big = cache.store(2, val("big"), 100);
  EXPECT_EQ(big, nullptr);  // not retained
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_EQ(cache.lookup(1), nullptr);  // evicted making room first
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruByteCache, ZeroCapacityDisablesRetention) {
  Cache cache(0);
  cache.store(1, val("a"), 1);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruByteCache, SetCapacityEvictsImmediately) {
  Cache cache(100);
  cache.store(1, val("a"), 40);
  cache.store(2, val("b"), 40);
  cache.set_capacity_bytes(50);
  EXPECT_EQ(cache.lookup(1), nullptr);  // older entry evicted
  EXPECT_NE(cache.lookup(2), nullptr);
  EXPECT_EQ(cache.stats().capacity_bytes, 50u);
}

TEST(LruByteCache, SharedOwnershipSurvivesEviction) {
  Cache cache(20);
  cache.store(1, val("keep"), 10);
  const auto held = cache.lookup(1);
  cache.store(2, val("x"), 10);
  cache.store(3, val("y"), 10);  // 1 evicted
  EXPECT_EQ(cache.lookup(1), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "keep");  // still valid for the holder
}

TEST(LruByteCache, LookupOrCreateCachesAndCounts) {
  LruByteCache<std::uint64_t, std::string> cache(1024);
  int built = 0;
  const auto make = [&]() {
    ++built;
    return std::make_shared<std::string>("made");
  };
  const auto bytes = [](const std::string& s) { return s.size(); };
  const auto a = cache.lookup_or_create(5, make, bytes);
  const auto b = cache.lookup_or_create(5, make, bytes);
  EXPECT_EQ(built, 1);
  EXPECT_EQ(a.get(), b.get());  // one shared object
  const LruStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(LruByteCache, LookupOrCreateReturnsOversizedUnretained) {
  LruByteCache<std::uint64_t, std::string> cache(4);
  const auto make = [] { return std::make_shared<std::string>("oversize"); };
  const auto bytes = [](const std::string& s) { return s.size(); };
  const auto got = cache.lookup_or_create(1, make, bytes);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "oversize");          // usable even though not retained
  EXPECT_EQ(cache.stats().entries, 0u); // evicted immediately
}

TEST(LruByteCache, ClearResetsEverything) {
  Cache cache(100);
  cache.store(1, val("a"), 10);
  cache.lookup(1);
  cache.lookup(2);
  cache.clear();
  const LruStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
}

TEST(LruByteCache, ConcurrentMixedTraffic) {
  Cache cache(1 << 10);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t key = (static_cast<std::uint64_t>(t) * 131 + i) % 64;
        if (auto got = cache.lookup(key)) {
          EXPECT_EQ(*got, std::to_string(key));
        } else {
          cache.store(key, val(std::to_string(key)), 16);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const LruStats s = cache.stats();
  EXPECT_LE(s.bytes, (1u << 10));
  for (std::uint64_t key = 0; key < 64; ++key) {
    if (auto got = cache.lookup(key)) {
      EXPECT_EQ(*got, std::to_string(key));
    }
  }
}

}  // namespace
}  // namespace redspot
