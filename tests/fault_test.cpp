// Fault-injection subsystem: plan validation, injector determinism and
// stream independence, engine behaviour under each fault class (the
// deadline guarantee must survive all of them), and the RunValidator
// auditor.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "core/policies/large_bid.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/run_validator.hpp"
#include "test_util.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

using testing::make_market;
using testing::run_fixed;
using testing::single_zone;
using testing::small_experiment;
using testing::step_series;

// A trace with one mid-run outage: up 65 min, dead 30 min, then cheap for
// the rest of the experiment. Forces one termination and one recovery.
PriceSeries outage_trace() {
  return step_series({{0.30, 13}, {2.00, 6}, {0.30, 60 * 12}});
}

// --- FaultPlan -----------------------------------------------------------------

TEST(FaultPlan, DefaultIsDisabledAndValid) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, AnyRateOrOutageEnables) {
  FaultPlan plan;
  plan.request_rejection_rate = 0.1;
  EXPECT_TRUE(plan.enabled());
  FaultPlan outage;
  outage.store_outages.push_back({100, 200});
  EXPECT_TRUE(outage.enabled());
}

TEST(FaultPlan, ValidateRejectsBadConfigurations) {
  {
    FaultPlan p;
    p.ckpt_write_failure_rate = 1.5;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    FaultPlan p;
    p.restart_failure_rate = -0.1;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    FaultPlan p;  // failure + corruption cannot exceed one write
    p.ckpt_write_failure_rate = 0.7;
    p.ckpt_corruption_rate = 0.7;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    FaultPlan p;
    p.store_outages.push_back({200, 100});  // inverted window
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    FaultPlan p;
    p.backoff.base = 0;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    FaultPlan p;
    p.backoff.cap = p.backoff.base - 1;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    FaultPlan p;
    p.backoff.jitter = 1.5;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
}

// --- FaultInjector -------------------------------------------------------------

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultPlan plan;
  plan.ckpt_write_failure_rate = 0.3;
  plan.request_rejection_rate = 0.4;
  FaultInjector a(plan, 7);
  FaultInjector b(plan, 7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.checkpoint_write_fails(0), b.checkpoint_write_fails(0));
    EXPECT_EQ(a.request_rejected(), b.request_rejected());
    EXPECT_EQ(a.backoff_delay(i % 8 + 1), b.backoff_delay(i % 8 + 1));
  }
}

TEST(FaultInjector, ZeroRateQueriesNeverFire) {
  FaultInjector injector(FaultPlan{}, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.checkpoint_write_fails(i * 1000));
    EXPECT_FALSE(injector.checkpoint_corrupts());
    EXPECT_FALSE(injector.restart_fails());
    EXPECT_FALSE(injector.request_rejected());
    EXPECT_FALSE(injector.notice_dropped());
    EXPECT_EQ(injector.notice_lag(300), 0);
  }
}

TEST(FaultInjector, ClassStreamsAreIndependent) {
  // Enabling checkpoint corruption must not change the rejection decision
  // sequence: each class draws from its own stream.
  FaultPlan only_rejections;
  only_rejections.request_rejection_rate = 0.5;
  FaultPlan both = only_rejections;
  both.ckpt_corruption_rate = 0.5;
  FaultInjector a(only_rejections, 11);
  FaultInjector b(both, 11);
  for (int i = 0; i < 500; ++i) {
    b.checkpoint_corrupts();  // interleave draws from the other class
    EXPECT_EQ(a.request_rejected(), b.request_rejected());
  }
}

TEST(FaultInjector, OutageWindowsFailWritesDeterministically) {
  FaultPlan plan;
  plan.store_outages.push_back({1000, 2000});
  plan.store_outages.push_back({5000, 6000});
  FaultInjector injector(plan, 3);
  EXPECT_FALSE(injector.store_unreachable(999));
  EXPECT_TRUE(injector.store_unreachable(1000));
  EXPECT_TRUE(injector.store_unreachable(1999));
  EXPECT_FALSE(injector.store_unreachable(2000));  // half-open window
  EXPECT_TRUE(injector.store_unreachable(5500));
  // Inside a window every write fails regardless of the random rate.
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(injector.checkpoint_write_fails(1500));
  EXPECT_FALSE(injector.checkpoint_write_fails(3000));
}

TEST(FaultInjector, BackoffGrowsExponentiallyAndCaps) {
  FaultPlan plan;
  plan.request_rejection_rate = 1.0;
  plan.backoff.base = 30;
  plan.backoff.cap = 600;
  plan.backoff.jitter = 0.0;
  FaultInjector injector(plan, 5);
  EXPECT_EQ(injector.backoff_delay(1), 30);
  EXPECT_EQ(injector.backoff_delay(2), 60);
  EXPECT_EQ(injector.backoff_delay(3), 120);
  EXPECT_EQ(injector.backoff_delay(5), 480);
  EXPECT_EQ(injector.backoff_delay(6), 600);   // capped
  EXPECT_EQ(injector.backoff_delay(40), 600);  // no overflow past the cap

  plan.backoff.jitter = 0.5;
  FaultInjector jittered(plan, 5);
  for (int i = 0; i < 50; ++i) {
    const Duration d = jittered.backoff_delay(2);
    EXPECT_GE(d, 60);
    EXPECT_LE(d, 90);  // base*2 stretched by at most 50%
  }
}

// --- Engine under faults -------------------------------------------------------

TEST(EngineFaults, AllZeroPlanMatchesDefaultRunExactly) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 2.0, 300);
  const RunResult base = run_fixed(market, e, PolicyKind::kPeriodic,
                                   Money::cents(81), {0});
  EngineOptions zero_plan;
  zero_plan.faults = FaultPlan{};
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, zero_plan);
  EXPECT_EQ(r.total_cost, base.total_cost);
  EXPECT_EQ(r.finish_time, base.finish_time);
  EXPECT_EQ(r.checkpoints_committed, base.checkpoints_committed);
  EXPECT_EQ(r.restarts, base.restarts);
  EXPECT_EQ(r.queue_delay_total, base.queue_delay_total);
  EXPECT_EQ(r.committed_progress, base.committed_progress);
  EXPECT_FALSE(r.faults.any());
}

TEST(EngineFaults, CheckpointWriteFailuresFallBackToOnDemandGuarantee) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  EngineOptions options;
  options.faults.ckpt_write_failure_rate = 1.0;  // every write fails
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GT(r.faults.ckpt_write_failures, 0);
  EXPECT_EQ(r.checkpoints_committed, 0);
  EXPECT_EQ(r.committed_progress, 0);
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, CorruptWritesRollBackToPreviousGoodCheckpoint) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  EngineOptions options;
  options.faults.ckpt_corruption_rate = 1.0;  // every commit rolls back
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GT(r.faults.ckpt_corruptions, 0);
  EXPECT_EQ(r.checkpoints_committed, 0);
  EXPECT_EQ(r.committed_progress, 0);
  // The rolled-back writes are visible in the log as invalidated entries.
  int invalid = 0;
  for (const Checkpoint& c : r.checkpoint_log) invalid += c.valid ? 0 : 1;
  EXPECT_EQ(invalid, r.faults.ckpt_corruptions);
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, RequestRejectionsBackOffWithoutBreakingTheDeadline) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  EngineOptions options;
  options.faults.request_rejection_rate = 1.0;  // capacity never appears
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_TRUE(r.switched_to_on_demand);
  EXPECT_GT(r.faults.request_rejections, 0);
  EXPECT_GT(r.faults.backoff_total, 0);
  EXPECT_EQ(r.spot_cost, Money());  // nothing was ever fulfilled
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, RestartFailuresRetryTheLoad) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  EngineOptions options;
  options.faults.restart_failure_rate = 1.0;  // every load fails
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  // The recovery after the outage keeps retrying the load until the
  // deadline margin forces on-demand; no load ever completes.
  EXPECT_GT(r.faults.restart_failures, 0);
  EXPECT_EQ(r.restarts, 0);
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, StoreOutageWindowFailsOnlyWritesInsideIt) {
  const SpotMarket market = make_market(single_zone(
      step_series({{0.30, 60 * 12}})));
  const Experiment e = small_experiment(3.0, 0.5, 300);
  EngineOptions options;
  // Periodic commits at each hour boundary; blank out the second hour's.
  options.faults.store_outages.push_back({kHour + 1, 3 * kHour - 1});
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GT(r.faults.ckpt_write_failures, 0);
  EXPECT_GT(r.checkpoints_committed, 0);  // writes outside the window land
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, DroppedNoticeKillsAbruptly) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 2.0, 300);
  EngineOptions with_notice;
  with_notice.termination_notice = 300;
  const RunResult clean = run_fixed(market, e, PolicyKind::kPeriodic,
                                    Money::cents(81), {0}, with_notice);
  EngineOptions dropped = with_notice;
  dropped.faults.notice_drop_rate = 1.0;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, dropped);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GT(r.faults.notices_dropped, 0);
  // The dropped notice forfeits the emergency checkpoint the clean run
  // gets, so recovery starts from scratch and finishes later.
  EXPECT_LE(r.restarts, clean.restarts);
  EXPECT_GE(r.finish_time, clean.finish_time);
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, LateNoticeShrinksTheWarningButNotTheGuarantee) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 2.0, 300);
  EngineOptions options;
  options.termination_notice = 300;
  options.faults.notice_late_rate = 1.0;
  options.faults.notice_max_lag = 2 * kMinute;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GT(r.faults.notices_late, 0);
  RunValidator(e, market.on_demand_rate()).check(r);
}

TEST(EngineFaults, AllSixPoliciesMeetTheDeadlineUnderModerateFaults) {
  const SpotMarket market(paper_traces(42), cc2_instance(),
                          QueueDelayModel());
  const Experiment e = Experiment::paper(40 * kDay, 0.15, 300);
  EngineOptions options;
  options.termination_notice = 300;
  options.record_timeline = true;
  options.record_line_items = true;
  options.faults.ckpt_write_failure_rate = 0.2;
  options.faults.ckpt_corruption_rate = 0.1;
  options.faults.restart_failure_rate = 0.2;
  options.faults.request_rejection_rate = 0.3;
  options.faults.notice_drop_rate = 0.2;
  options.faults.notice_late_rate = 0.3;
  const RunValidator validator(e, market.on_demand_rate());

  const PolicyKind kinds[] = {PolicyKind::kThreshold, PolicyKind::kRisingEdge,
                              PolicyKind::kPeriodic, PolicyKind::kMarkovDaly};
  for (PolicyKind kind : kinds) {
    FixedStrategy strategy(Money::cents(81), {0, 1, 2}, make_policy(kind));
    Engine engine(market, e, strategy, options);
    const RunResult r = engine.run();
    EXPECT_TRUE(r.met_deadline) << to_string(kind);
    validator.check(r);
  }
  {
    FixedStrategy strategy(LargeBidPolicy::large_bid(),
                           std::vector<std::size_t>{0},
                           std::make_unique<LargeBidPolicy>(Money::cents(30)));
    Engine engine(market, e, strategy, options);
    const RunResult r = engine.run();
    EXPECT_TRUE(r.met_deadline) << "large-bid";
    validator.check(r);
  }
  {
    AdaptiveStrategy strategy;
    Engine engine(market, e, strategy, options);
    const RunResult r = engine.run();
    EXPECT_TRUE(r.met_deadline) << "adaptive";
    validator.check(r);
  }
}

// --- RunValidator --------------------------------------------------------------

TEST(RunValidator, PassesACleanRunAndCatchesTampering) {
  const SpotMarket market = make_market(single_zone(outage_trace()));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  EngineOptions options;
  options.record_timeline = true;
  options.record_line_items = true;
  const RunResult clean = run_fixed(market, e, PolicyKind::kPeriodic,
                                    Money::cents(81), {0}, options);
  const RunValidator validator(e, market.on_demand_rate());
  EXPECT_TRUE(validator.audit(clean).empty());
  EXPECT_NO_THROW(validator.check(clean));

  {
    RunResult tampered = clean;  // cost decomposition broken
    tampered.total_cost += Money::cents(1);
    EXPECT_FALSE(validator.audit(tampered).empty());
    EXPECT_THROW(validator.check(tampered), CheckFailure);
  }
  {
    RunResult tampered = clean;  // deadline flag contradicts finish time
    tampered.finish_time = e.deadline_time() + 1;
    EXPECT_FALSE(validator.audit(tampered).empty());
  }
  {
    RunResult tampered = clean;  // committed progress not backed by the log
    tampered.committed_progress += 100;
    EXPECT_FALSE(validator.audit(tampered).empty());
  }
  {
    RunResult tampered = clean;  // phantom on-demand charge
    tampered.on_demand_cost += Money::dollars(2.40);
    tampered.total_cost += Money::dollars(2.40);
    EXPECT_FALSE(validator.audit(tampered).empty());
  }
  {
    RunResult tampered = clean;  // an out-of-bid partial hour was charged
    ASSERT_FALSE(tampered.timeline.empty());
    LineItem bogus;
    bogus.kind = LineItem::Kind::kSpotUserPartial;
    bogus.zone = 0;
    bogus.cycle_start = hour_floor(65 * kMinute);
    bogus.charged_at = 65 * kMinute;  // the out-of-bid instant in the trace
    bogus.amount = Money::dollars(0.30);
    tampered.line_items.push_back(bogus);
    tampered.spot_cost += bogus.amount;
    tampered.total_cost += bogus.amount;
    EXPECT_FALSE(validator.audit(tampered).empty());
  }
}

}  // namespace
}  // namespace redspot
