// Deadline module: the margin formula M = (T - now) - (C_r + t_c + t_r),
// its decay over time and jump at each commit, the pure trigger decision,
// and DeadlineMonitor's arm/re-arm/disarm calendar semantics.
#include <gtest/gtest.h>

#include <optional>

#include "core/deadline/deadline_monitor.hpp"
#include "core/events/event_queue.hpp"

namespace redspot {
namespace {

// C = 2 h, t_c = t_r = 300 s, deadline at 11100 s (65 min of slack).
DeadlineParams params() {
  return DeadlineParams{2 * kHour, 300, 300, 2 * kHour + 3900};
}

TEST(Deadline, SwitchTimeMovesLaterWithEveryCommit) {
  const DeadlineParams p = params();
  // Nothing committed: no restart owed, only the final t_c reserve.
  EXPECT_EQ(deadline_switch_time(p, 0), 3600);
  // Committed progress shrinks C_r but adds the t_r restore debt.
  EXPECT_EQ(deadline_switch_time(p, 3600), 6900);
  // Everything committed: only the t_r restore and final t_c reserve remain.
  EXPECT_EQ(deadline_switch_time(p, 7200), 10500);
}

TEST(Deadline, MarginDecaysLinearlyAndGoesNegative) {
  const DeadlineParams p = params();
  EXPECT_EQ(deadline_margin(p, 0, 0), 3600);
  EXPECT_EQ(deadline_margin(p, 0, 1800), 1800);
  EXPECT_EQ(deadline_margin(p, 0, 3600), 0);
  EXPECT_EQ(deadline_margin(p, 0, 4000), -400);  // guarantee already blown
  // A commit restores margin by the committed amount minus the t_r debt.
  EXPECT_EQ(deadline_margin(p, 3600, 3600), 3300);
}

TEST(Deadline, TriggerWaitsOutAnInFlightCheckpoint) {
  const DeadlineParams p = params();
  EXPECT_EQ(decide_at_trigger(p, 0, 3600, /*ckpt_in_flight=*/true, 3600),
            DeadlineAction::kWait);
  // In-flight wins even with no leader.
  EXPECT_EQ(decide_at_trigger(p, 0, 3600, true, std::nullopt),
            DeadlineAction::kWait);
}

TEST(Deadline, TriggerForcesACheckpointOnlyForWorthwhileProgress) {
  const DeadlineParams p = params();
  // Leader banked 3600 s of unprotected progress > t_c: protect it first.
  EXPECT_EQ(decide_at_trigger(p, 0, 3600, false, 3600),
            DeadlineAction::kForceCheckpoint);
  // Progress not exceeding committed + t_c is not worth a write that
  // costs as much: switch.
  EXPECT_EQ(decide_at_trigger(p, 0, 3600, false, 300),
            DeadlineAction::kSwitchToOnDemand);
  EXPECT_EQ(decide_at_trigger(p, 3600, 6900, false, 3900),
            DeadlineAction::kSwitchToOnDemand);
  // No running zone at all: nothing to protect.
  EXPECT_EQ(decide_at_trigger(p, 0, 3600, false, std::nullopt),
            DeadlineAction::kSwitchToOnDemand);
}

TEST(Deadline, LateTriggerNeverForcesACheckpoint) {
  const DeadlineParams p = params();
  // Fired past the due instant (a re-armed trigger that was already
  // overdue): the t_c reserve is part-spent, so a forced write could no
  // longer be covered — switch immediately even with a strong leader.
  EXPECT_EQ(decide_at_trigger(p, 0, 3700, false, 3700),
            DeadlineAction::kSwitchToOnDemand);
}

TEST(DeadlineMonitor, ArmsAtSwitchTimeAndFiresOnce) {
  EventQueue queue(0);
  int fired = 0;
  DeadlineMonitor monitor(queue, params(), [&fired] { ++fired; });
  EXPECT_FALSE(monitor.armed());

  monitor.rearm(0);
  EXPECT_TRUE(monitor.armed());
  EXPECT_EQ(monitor.switch_time(0), 3600);
  while (queue.step()) {
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 3600);
  EXPECT_FALSE(monitor.armed());  // one-shot until re-armed
}

TEST(DeadlineMonitor, RearmReplacesThePendingTrigger) {
  EventQueue queue(0);
  int fired = 0;
  DeadlineMonitor monitor(queue, params(), [&fired] { ++fired; });

  monitor.rearm(0);
  // A commit re-arms for the later switch time; the old trigger must not
  // also fire.
  monitor.rearm(3600);
  EXPECT_EQ(queue.pending_count(), 1u);
  while (queue.step()) {
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 6900);
}

TEST(DeadlineMonitor, OverdueRearmClampsToNow) {
  EventQueue queue(0);
  int fired = 0;
  DeadlineMonitor monitor(queue, params(), [&fired] { ++fired; });

  // Advance the clock past the uncommitted switch time.
  EventId filler = queue.schedule_at(EventKind::kPriceTick, kNoZone, 5000,
                                     [] {});
  (void)filler;
  ASSERT_TRUE(queue.step());
  ASSERT_EQ(queue.now(), 5000);

  monitor.rearm(0);  // switch_time 3600 < now: must not schedule in the past
  ASSERT_TRUE(queue.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 5000);
  EXPECT_EQ(monitor.margin(0), -1400);
}

TEST(DeadlineMonitor, DisarmCancelsTheTrigger) {
  EventQueue queue(0);
  int fired = 0;
  DeadlineMonitor monitor(queue, params(), [&fired] { ++fired; });

  monitor.rearm(0);
  monitor.disarm();
  EXPECT_FALSE(monitor.armed());
  EXPECT_EQ(queue.pending_count(), 0u);
  while (queue.step()) {
  }
  EXPECT_EQ(fired, 0);
  // Disarm is idempotent.
  monitor.disarm();
  EXPECT_FALSE(monitor.armed());
}

}  // namespace
}  // namespace redspot
