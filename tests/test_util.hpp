// Shared helpers for the redspot test suite: hand-built price traces with
// exact shapes, markets with deterministic queue delays, and engine-run
// shortcuts.
#pragma once

#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/policy.hpp"
#include "core/strategy.hpp"
#include "market/spot_market.hpp"
#include "trace/zone_traces.hpp"

namespace redspot::testing {

/// A one-zone series holding `price` for `steps` samples from t = 0.
inline PriceSeries constant_series(double price, std::size_t steps,
                                   SimTime start = 0) {
  return PriceSeries(start, kPriceStep,
                     std::vector<Money>(steps, Money::dollars(price)));
}

/// Builds a series from (price, hold_steps) segments.
inline PriceSeries step_series(
    std::initializer_list<std::pair<double, std::size_t>> segments,
    SimTime start = 0) {
  std::vector<Money> samples;
  for (const auto& [price, steps] : segments) {
    samples.insert(samples.end(), steps, Money::dollars(price));
  }
  return PriceSeries(start, kPriceStep, std::move(samples));
}

/// One-zone trace set.
inline ZoneTraceSet single_zone(PriceSeries series) {
  std::vector<PriceSeries> v;
  v.push_back(std::move(series));
  return ZoneTraceSet({"test-zone"}, std::move(v));
}

/// Multi-zone trace set from aligned series.
inline ZoneTraceSet zones(std::vector<PriceSeries> series) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < series.size(); ++i) {
    // Built with += (not "z" + to_string) to dodge a GCC 12 -Wrestrict
    // false positive in the inlined operator+(const char*, string&&).
    std::string name("z");
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return ZoneTraceSet(std::move(names), std::move(series));
}

/// Market with a FIXED queue delay (default 0 — instances materialize
/// instantly, which makes hand-computed billing exact).
inline SpotMarket make_market(ZoneTraceSet traces, Duration queue_delay = 0) {
  return SpotMarket(std::move(traces), cc2_instance(),
                    QueueDelayModel(QueueDelayParams::fixed(queue_delay)));
}

/// Runs one fixed-config experiment and returns the result.
inline RunResult run_fixed(const SpotMarket& market,
                           const Experiment& experiment, PolicyKind policy,
                           Money bid, std::vector<std::size_t> zone_ids,
                           EngineOptions options = {}) {
  FixedStrategy strategy(bid, std::move(zone_ids), make_policy(policy));
  Engine engine(market, experiment, strategy, options);
  return engine.run();
}

/// A small experiment: C hours of compute, slack fraction, t_c = t_r.
inline Experiment small_experiment(double compute_hours, double slack_frac,
                                   Duration tc, SimTime start = 0) {
  Experiment e;
  e.app = AppModel{"test-app", hours(compute_hours), 1, 8};
  e.costs = CheckpointCosts{tc, tc};
  e.start = start;
  e.deadline = hours(compute_hours * (1.0 + slack_frac));
  e.history_span = 2 * kHour;
  e.validate();
  return e;
}

}  // namespace redspot::testing
