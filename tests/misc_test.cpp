// Odds-and-ends coverage: RunResult rendering, file-based CSV round trips,
// engine accounting counters, and cross-checks between independent
// implementations (billing ledger vs engine totals; availability vs
// HistoryStats).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/adaptive/history_stats.hpp"
#include "core/engine.hpp"
#include "core/run_result.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "exp/scenario.hpp"
#include "test_util.hpp"
#include "trace/availability.hpp"
#include "trace/csv_io.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::run_fixed;
using testing::single_zone;
using testing::small_experiment;
using testing::step_series;

TEST(RunResultRendering, TimelineStrContainsEvents) {
  RunResult r;
  r.timeline.push_back(
      TimelineEvent{3600, 2, TimelineKind::kCheckpointStart, "progress=1h"});
  r.timeline.push_back(
      TimelineEvent{3900, 2, TimelineKind::kCheckpointDone, ""});
  const std::string s = r.timeline_str();
  EXPECT_NE(s.find("checkpoint-start"), std::string::npos);
  EXPECT_NE(s.find("zone 2"), std::string::npos);
  EXPECT_NE(s.find("progress=1h"), std::string::npos);
}

TEST(RunResultRendering, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(TimelineKind::kCompleted); ++k) {
    EXPECT_NE(to_string(static_cast<TimelineKind>(k)), "?");
  }
}

TEST(CsvFiles, WriteAndReadBack) {
  const auto path =
      std::filesystem::temp_directory_path() / "redspot_csv_test.csv";
  const ZoneTraceSet original =
      testing::zones({step_series({{0.27, 4}, {1.999, 4}}),
                      constant_series(0.5, 8)});
  write_csv_file(path.string(), original);
  const ZoneTraceSet parsed = read_csv_file(path.string());
  EXPECT_EQ(parsed.num_zones(), 2u);
  EXPECT_EQ(parsed.price(0, 4 * kPriceStep), Money::dollars(1.999));
  std::filesystem::remove(path);
  EXPECT_THROW(read_csv_file("/nonexistent/nowhere.csv"),
               std::runtime_error);
}

TEST(EngineAccounting, SpotInstanceSecondsTracksWallTime) {
  // One instance, 2 h of compute, no interruptions. Checkpoints: two
  // Periodic boundary commits plus one deadline-margin forced commit (1 h
  // slack drains to the trigger once mid-run) = 3 x 300 s of pauses.
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * 12)));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  const RunResult r =
      run_fixed(market, e, PolicyKind::kPeriodic, Money::cents(81), {0});
  EXPECT_EQ(r.checkpoints_committed, 3);
  EXPECT_EQ(r.spot_instance_seconds, 2 * kHour + 3 * 300);
  EXPECT_EQ(r.queue_delay_total, 0);
  EXPECT_EQ(r.full_outages, 0);
}

TEST(EngineAccounting, FullOutageCountsOncePerCollapse) {
  // Both zones die at the same tick and recover together, twice.
  const auto zone_trace = step_series({{0.30, 6},
                                       {2.00, 6},
                                       {0.30, 6},
                                       {2.00, 6},
                                       {0.30, 40 * 12}});
  const SpotMarket market =
      make_market(testing::zones({zone_trace, zone_trace}));
  const Experiment e = small_experiment(2.0, 1.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0, 1});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.full_outages, 2);
  EXPECT_EQ(r.out_of_bid_terminations, 4);  // 2 zones x 2 collapses
}

TEST(EngineAccounting, RestartCountsOnlyCheckpointLoads) {
  // First death has no checkpoint -> from-scratch start (not a restart);
  // second death restores from the by-then committed checkpoint.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 6},               // 30 min, no ckpt yet
      {2.00, 6},               // death 1
      {0.30, 12 + 9},          // 1h45: periodic ckpt at 1h55... runs
      {2.00, 6},               // death 2 (after >1 cycle: ckpt exists)
      {0.30, 40 * 12},
  })));
  const Experiment e = small_experiment(2.0, 2.0, 300);
  const RunResult r =
      run_fixed(market, e, PolicyKind::kPeriodic, Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.out_of_bid_terminations, 2);
  EXPECT_EQ(r.restarts, 1);
}

TEST(CrossCheck, HistoryStatsMatchesAvailabilityAnalysis) {
  // Two independent implementations must agree on availability.
  const ZoneTraceSet traces = paper_traces(42).window(31 * kDay, 38 * kDay);
  const HistoryStats hist(traces, traces.start(), traces.end(),
                          {Money::cents(81)});
  for (std::size_t z = 0; z < traces.num_zones(); ++z) {
    const double via_hist = hist.stats(z, 0).availability;
    const double via_analysis = availability_fraction(
        traces.zone(z), Money::cents(81), traces.start(), traces.end());
    EXPECT_NEAR(via_hist, via_analysis, 1e-9);
  }
}

TEST(CrossCheck, EngineCostEqualsHandComputedBill) {
  // A fully scripted run whose bill is computable by hand:
  //   hour 1 at 0.30 (completed), hour 2 at 0.40 (completed),
  //   30 min into hour 3 at 0.50 -> out-of-bid (free),
  //   recovery + finish: restart at 3h30m from the 2h-boundary ckpt
  //   (progress ~1h55m), needs ~1h10m -> two started hours at 0.35.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 12},
      {0.40, 12},
      {0.50, 6},
      {2.00, 6},
      {0.35, 40 * 12},
  })));
  const Experiment e = small_experiment(3.0, 1.0, 300);
  EngineOptions options;
  options.record_line_items = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  // Committed at deaths: ckpts at 55min and 1h55m (cycle ends - tc).
  // Work lost: 2h25m(death) - ~1h50m committed = ~35 min.
  EXPECT_EQ(r.out_of_bid_terminations, 1);
  Money expected = Money::dollars(0.30) + Money::dollars(0.40);
  // Remaining compute after restart: 3h - 1h50m = 1h10m + t_r = ~1h15m
  // -> 2 started hours at 0.35.
  expected += Money::dollars(0.35) * 2;
  EXPECT_EQ(r.total_cost, expected);
}

TEST(CrossCheck, TwoIndependentUptimePathsAgreeOnPaperTraces) {
  // Closed-form vs iterative solvers on real generator output at several
  // probe points (complements the random-chain property test).
  const ZoneTraceSet traces = paper_traces(7);
  for (SimTime t : {35 * kDay, 40 * kDay, 95 * kDay}) {
    for (std::size_t z = 0; z < 3; ++z) {
      const PriceSeries w = traces.zone(z).window(t - 2 * kDay, t);
      const MarkovModel m = build_markov_model(w);
      const Money cur = w.sample(w.size() - 1);
      const Duration closed = expected_uptime(m, cur, Money::cents(81));
      const Duration iter =
          expected_uptime_iterative(m, cur, Money::cents(81), 60000);
      if (closed >= kDefaultUptimeCap / 2 || iter >= kDefaultUptimeCap / 2)
        continue;  // both effectively unbounded paths tested elsewhere
      EXPECT_NEAR(static_cast<double>(iter), static_cast<double>(closed),
                  0.05 * static_cast<double>(closed) + 600.0);
    }
  }
}

TEST(Scenario, EightyChunksOverlapAsThePaperDescribes) {
  // "80 experiments over partially overlapping chunks": consecutive
  // starts must be closer than one experiment span.
  const Scenario scenario{VolatilityWindow::kLow, 0.50, 300, 80};
  const auto starts = scenario.starts();
  const Duration span = scenario.experiment(0).deadline;
  for (std::size_t i = 1; i < starts.size(); ++i)
    EXPECT_LT(starts[i] - starts[i - 1], span);
}

}  // namespace
}  // namespace redspot
