// Unit tests for the price-state Markov model and expected-uptime solvers
// (Appendix B of the paper).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/random.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "test_util.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::step_series;

PriceSeries series_of(std::vector<double> prices) {
  std::vector<Money> samples;
  samples.reserve(prices.size());
  for (double p : prices) samples.push_back(Money::dollars(p));
  return PriceSeries(0, kPriceStep, std::move(samples));
}

// --- Model building -----------------------------------------------------------

TEST(MarkovModel, StatesAreDistinctSortedPrices) {
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.5, 0.3, 0.5, 0.7}));
  ASSERT_EQ(m.num_states(), 3u);
  EXPECT_DOUBLE_EQ(m.state_prices[0], 0.3);
  EXPECT_DOUBLE_EQ(m.state_prices[1], 0.5);
  EXPECT_DOUBLE_EQ(m.state_prices[2], 0.7);
}

TEST(MarkovModel, RowsAreStochastic) {
  Rng rng(55);
  std::vector<double> prices(500);
  for (auto& p : prices)
    p = 0.3 + 0.1 * static_cast<double>(rng.uniform_index(5));
  const MarkovModel m = build_markov_model(series_of(prices));
  for (std::size_t r = 0; r < m.num_states(); ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < m.num_states(); ++c) {
      EXPECT_GE(m.trans(r, c), 0.0);
      row += m.trans(r, c);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(MarkovModel, TransitionCountsWithoutSmoothing) {
  // 0.3 -> 0.3 -> 0.5 -> 0.3: from 0.3: one self, one to 0.5.
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.3, 0.5, 0.3}), 32, 0.0);
  EXPECT_DOUBLE_EQ(m.trans(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.trans(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.trans(1, 0), 1.0);
}

TEST(MarkovModel, TerminalStateGetsSelfLoop) {
  // 0.9 is only observed as the last sample.
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.3, 0.9}), 32, 0.0);
  EXPECT_DOUBLE_EQ(m.trans(1, 1), 1.0);
}

TEST(MarkovModel, QuantileBinningCapsStates) {
  Rng rng(66);
  std::vector<double> prices(2000);
  for (auto& p : prices) p = rng.uniform(0.27, 3.0);  // ~2000 unique values
  const MarkovModel m = build_markov_model(series_of(prices), 16);
  EXPECT_LE(m.num_states(), 16u);
  EXPECT_GE(m.num_states(), 8u);
  // State prices remain sorted.
  for (std::size_t i = 1; i < m.num_states(); ++i)
    EXPECT_LT(m.state_prices[i - 1], m.state_prices[i]);
}

TEST(MarkovModel, StateOfPicksNearest) {
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.5, 0.3, 0.5}));
  EXPECT_EQ(m.state_of(Money::dollars(0.31)), 0u);
  EXPECT_EQ(m.state_of(Money::dollars(0.49)), 1u);
  EXPECT_EQ(m.state_of(Money::dollars(9.0)), 1u);  // clamps to extreme
}

TEST(MarkovModel, MaxAliveState) {
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.5, 0.7, 0.3, 0.5, 0.7}));
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.55)), 1u);
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.70)), 2u);
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.10)), SIZE_MAX);
}

TEST(MarkovModel, StateOfBoundaries) {
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.5, 0.7, 0.3, 0.5, 0.7}));
  // Exactly on a state price -> that state.
  EXPECT_EQ(m.state_of(Money::dollars(0.3)), 0u);
  EXPECT_EQ(m.state_of(Money::dollars(0.5)), 1u);
  EXPECT_EQ(m.state_of(Money::dollars(0.7)), 2u);
  // Below the minimum / above the maximum clamp to the extremes.
  EXPECT_EQ(m.state_of(Money::dollars(0.01)), 0u);
  EXPECT_EQ(m.state_of(Money::dollars(99.0)), 2u);
}

TEST(MarkovModel, StateOfEquidistantTiePicksLowerIndex) {
  // 0.25, 0.5 and 0.75 are exactly representable, so 0.5 is a true FP
  // midpoint; the tie must resolve to the lower index, matching the
  // historical first-minimum scan.
  const MarkovModel m = build_markov_model(series_of({0.25, 0.75, 0.25}));
  EXPECT_EQ(m.state_of(Money::dollars(0.5)), 0u);
  // Either side of the midpoint snaps to the true nearest state.
  EXPECT_EQ(m.state_of(Money::dollars(0.49)), 0u);
  EXPECT_EQ(m.state_of(Money::dollars(0.51)), 1u);
}

TEST(MarkovModel, MaxAliveStateBoundaries) {
  const MarkovModel m =
      build_markov_model(series_of({0.3, 0.5, 0.7, 0.3, 0.5, 0.7}));
  // Bid exactly on a state price keeps that state alive.
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.3)), 0u);
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.5)), 1u);
  // Bid below every state: nothing alive.
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.29)), SIZE_MAX);
  // Bid between states rounds down; above the maximum keeps everything.
  EXPECT_EQ(m.max_alive_state(Money::dollars(0.69)), 1u);
  EXPECT_EQ(m.max_alive_state(Money::dollars(42.0)), 2u);
}

TEST(MarkovModel, SingleSampleHistoryDegeneratesToSelfLoop) {
  const MarkovModel m = build_markov_model(constant_series(0.3, 1));
  ASSERT_EQ(m.num_states(), 1u);
  EXPECT_NEAR(m.trans(0, 0), 1.0, 1e-12);
  EXPECT_EQ(expected_uptime(m, Money::dollars(0.3), Money::cents(81)),
            kDefaultUptimeCap);
}

TEST(MarkovModel, ValidatesInput) {
  EXPECT_THROW(build_markov_model(constant_series(0.3, 10), 1),
               CheckFailure);
  EXPECT_THROW(build_markov_model(constant_series(0.3, 10), 32, 1.0),
               CheckFailure);
}

// --- Expected uptime -------------------------------------------------------------

TEST(Uptime, ZeroWhenCurrentlyOutOfBid) {
  const MarkovModel m = build_markov_model(series_of({0.3, 1.0, 0.3, 1.0}));
  EXPECT_EQ(expected_uptime(m, Money::dollars(1.0), Money::cents(81)), 0);
  EXPECT_EQ(expected_uptime_iterative(m, Money::dollars(1.0),
                                      Money::cents(81)),
            0);
}

TEST(Uptime, CapWhenBidAboveEverything) {
  const MarkovModel m = build_markov_model(series_of({0.3, 0.4, 0.3, 0.4}));
  EXPECT_EQ(expected_uptime(m, Money::dollars(0.3), Money::dollars(5.0)),
            kDefaultUptimeCap);
}

TEST(Uptime, TwoStateChainMatchesGeometricFormula) {
  // Build an exact two-state chain: stay alive with probability q, die
  // with probability 1-q. Expected absorption time = 1/(1-q) steps.
  MarkovModel m;
  m.state_prices = {0.30, 1.00};
  m.trans = Matrix{{0.9, 0.1}, {0.5, 0.5}};
  m.step = kPriceStep;
  const Duration e =
      expected_uptime(m, Money::dollars(0.30), Money::cents(81));
  EXPECT_NEAR(static_cast<double>(e), 10.0 * kPriceStep,
              static_cast<double>(kPriceStep) * 0.01);
}

TEST(Uptime, IterativeMatchesClosedForm) {
  // Property: the paper's iterative estimator and the fundamental-matrix
  // solution agree on random chains.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> prices(400);
    double level = 0.4;
    for (auto& p : prices) {
      if (rng.bernoulli(0.1)) level = rng.uniform(0.3, 1.5);
      p = std::round(level * 100.0) / 100.0;
    }
    const MarkovModel m = build_markov_model(series_of(prices), 24);
    const Money cur = Money::dollars(prices.back());
    const Money bid = Money::cents(81);
    const Duration closed = expected_uptime(m, cur, bid);
    const Duration iter = expected_uptime_iterative(m, cur, bid, 60000);
    if (closed == kDefaultUptimeCap || iter == kDefaultUptimeCap) {
      // Both must agree that the horizon is effectively unbounded.
      EXPECT_GT(std::min(closed, iter),
                kDefaultUptimeCap / 3);
    } else {
      EXPECT_NEAR(static_cast<double>(iter), static_cast<double>(closed),
                  0.02 * static_cast<double>(closed) + 600.0);
    }
  }
}

TEST(Uptime, HigherBidNeverShortensUptime) {
  const ZoneTraceSet traces = paper_traces(42);
  const PriceSeries w = traces.zone(1).window(35 * kDay, 37 * kDay);
  const MarkovModel m = build_markov_model(w);
  const Money cur = w.sample(w.size() - 1);
  Duration prev = 0;
  for (Money bid = cur; bid <= Money::dollars(3.07);
       bid += Money::cents(20)) {
    const Duration e = expected_uptime(m, cur, bid);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Uptime, SmoothingPreventsClosedClassCap) {
  // Two disjoint calm/high blocks: without smoothing the calm block is a
  // closed class under a bid between them; with smoothing the estimate
  // stays finite (below the cap).
  std::vector<double> prices;
  for (int i = 0; i < 100; ++i) prices.push_back(0.30);
  for (int i = 0; i < 20; ++i) prices.push_back(2.00);
  for (int i = 0; i < 100; ++i) prices.push_back(0.31);
  const MarkovModel smoothed = build_markov_model(series_of(prices), 32,
                                                  0.02);
  const Duration e =
      expected_uptime(smoothed, Money::dollars(0.31), Money::cents(81));
  EXPECT_GT(e, 0);
  EXPECT_LT(e, kDefaultUptimeCap);
}

TEST(Uptime, CombinedIsSumOfZones) {
  const std::vector<Duration> per_zone{kHour, 2 * kHour, 30 * kMinute};
  EXPECT_EQ(combined_expected_uptime(per_zone), 3 * kHour + 30 * kMinute);
  EXPECT_EQ(combined_expected_uptime(std::vector<Duration>{}), 0);
  EXPECT_THROW(combined_expected_uptime(std::vector<Duration>{-1}),
               CheckFailure);
}

TEST(Uptime, MoreVolatileHistoryGivesShorterUptime) {
  // A history that leaves the bid often must predict shorter uptime than
  // one that rarely does.
  std::vector<double> stable, flappy;
  Rng rng(88);
  for (int i = 0; i < 500; ++i) {
    stable.push_back(rng.bernoulli(0.02) ? 1.0 : 0.30);
    flappy.push_back(rng.bernoulli(0.3) ? 1.0 : 0.30);
  }
  const MarkovModel ms = build_markov_model(series_of(stable));
  const MarkovModel mf = build_markov_model(series_of(flappy));
  const Money cur = Money::dollars(0.30);
  const Money bid = Money::cents(81);
  EXPECT_GT(expected_uptime(ms, cur, bid), expected_uptime(mf, cur, bid));
}

}  // namespace
}  // namespace redspot
