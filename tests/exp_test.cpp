// Unit tests for the experiment harness: scenarios, sweep runners and
// report formatting.
#include <gtest/gtest.h>

#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "test_util.hpp"
#include "trace/calendar.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;

TEST(Scenario, WindowsMapToCalendarMonths) {
  EXPECT_EQ(window_start(VolatilityWindow::kLow),
            month_start(kLowVolatilityMonth));
  EXPECT_EQ(window_end(VolatilityWindow::kHigh),
            month_end(kHighVolatilityMonth));
  EXPECT_EQ(to_string(VolatilityWindow::kLow), "low-volatility");
}

TEST(Scenario, StartsFitInsideWindowWithHistory) {
  const Scenario scenario{VolatilityWindow::kLow, 0.50, 900, 80};
  const auto starts = scenario.starts();
  ASSERT_EQ(starts.size(), 80u);
  const Experiment probe = scenario.experiment(0);
  EXPECT_GE(starts.front(),
            window_start(VolatilityWindow::kLow) + probe.history_span -
                kPriceStep);
  EXPECT_LE(starts.back() + probe.deadline,
            window_end(VolatilityWindow::kLow) + kPriceStep);
}

TEST(Scenario, ExperimentsParameterizedCorrectly) {
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 900, 10};
  const Experiment e = scenario.experiment(3);
  EXPECT_EQ(e.app.total_compute, 20 * kHour);
  EXPECT_EQ(e.deadline, 23 * kHour);
  EXPECT_EQ(e.costs.checkpoint, 900);
  // Distinct chunks get distinct seeds (queue delays decorrelate).
  EXPECT_NE(scenario.experiment(3).seed, scenario.experiment(4).seed);
  EXPECT_THROW(scenario.experiment(10), CheckFailure);
}

TEST(Scenario, PaperGridHasEightCells) {
  const auto cells = paper_scenarios();
  EXPECT_EQ(cells.size(), 8u);
  for (const Scenario& s : cells) EXPECT_EQ(s.num_experiments, 80u);
  EXPECT_FALSE(cells[0].label().empty());
}

TEST(Sweep, FixedSweepRunsEveryChunk) {
  const SpotMarket market =
      make_market(testing::single_zone(constant_series(0.30, 40 * 24 * 12)));
  Scenario scenario{VolatilityWindow::kLow, 0.50, 300, 5};
  // Shrink to the trace we built: use a tiny custom scenario via the
  // generic runner instead.
  scenario.num_experiments = 5;
  // This market's trace doesn't cover March 2013; build a scenario-free
  // check instead through run_fixed_sweep on a market that does.
  const SpotMarket paper_market(paper_traces(3), cc2_instance(),
                                QueueDelayModel(QueueDelayParams::fixed(0)));
  const auto results = run_fixed_sweep(
      paper_market, scenario,
      PolicyRunSpec{PolicyKind::kPeriodic, Money::cents(81), {0}});
  ASSERT_EQ(results.size(), 5u);
  for (const RunResult& r : results) {
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.met_deadline);
  }
  const auto costs = checked_costs(results);
  EXPECT_EQ(costs.size(), 5u);
}

TEST(Sweep, ParallelSweepIsDeterministic) {
  const SpotMarket market(paper_traces(3), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::fixed(200)));
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 6};
  const PolicyRunSpec spec{PolicyKind::kMarkovDaly, Money::cents(81), {1}};
  const auto a = costs_of(run_fixed_sweep(market, scenario, spec));
  const auto b = costs_of(run_fixed_sweep(market, scenario, spec));
  EXPECT_EQ(a, b);
}

TEST(Sweep, MergedSingleZoneTriplesTheSample) {
  const SpotMarket market(paper_traces(3), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::fixed(0)));
  const Scenario scenario{VolatilityWindow::kLow, 0.50, 300, 4};
  const auto merged = merged_single_zone_costs(
      market, scenario, PolicyKind::kPeriodic, Money::cents(81));
  EXPECT_EQ(merged.size(), 12u);  // 3 zones x 4 chunks
}

TEST(Sweep, BestCaseRedundancyIsElementwiseMin) {
  const SpotMarket market(paper_traces(3), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::fixed(0)));
  const Scenario scenario{VolatilityWindow::kHigh, 0.15, 300, 4};
  const PolicyKind policies[] = {PolicyKind::kPeriodic,
                                 PolicyKind::kMarkovDaly};
  const auto best = best_case_redundancy_costs(market, scenario, policies,
                                               Money::cents(81));
  ASSERT_EQ(best.size(), 4u);
  std::vector<std::size_t> zones{0, 1, 2};
  for (PolicyKind p : policies) {
    const auto single = costs_of(run_fixed_sweep(
        market, scenario, PolicyRunSpec{p, Money::cents(81), zones}));
    for (std::size_t i = 0; i < best.size(); ++i)
      EXPECT_LE(best[i], single[i] + 1e-9);
  }
}

TEST(Report, BoxplotTableContainsEverything) {
  std::vector<BoxRow> rows;
  rows.push_back(make_box_row("periodic", std::vector<double>{1, 2, 3, 4}));
  const std::string table = boxplot_table(
      "Demo", rows, Money::dollars(48.0), Money::dollars(5.40));
  EXPECT_NE(table.find("Demo"), std::string::npos);
  EXPECT_NE(table.find("periodic"), std::string::npos);
  EXPECT_NE(table.find("$48.00"), std::string::npos);
  EXPECT_NE(table.find("$5.40"), std::string::npos);
  EXPECT_NE(table.find("median"), std::string::npos);
}

TEST(Report, MakeBoxRowRejectsEmpty) {
  EXPECT_THROW(make_box_row("x", std::vector<double>{}), CheckFailure);
}

TEST(Report, TwoColumnTableAligns) {
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"a", "1"}, {"longer-name", "2"}};
  const std::string t = two_column_table("T", rows);
  EXPECT_NE(t.find("longer-name"), std::string::npos);
  EXPECT_NE(t.find("== T =="), std::string::npos);
}

}  // namespace
}  // namespace redspot
