// Kill-and-resume integration test for the crash-safe run journal.
//
// Forks the real redspot-sim binary (path injected via REDSPOT_SIM_BIN) in
// ensemble mode with --journal, SIGKILLs it once at least one shard record
// has been fsynced, then reruns the identical command and checks that the
// resumed run (a) replays journaled shards instead of recomputing them and
// (b) prints a summary bit-identical to an uninterrupted run. SIGKILL
// cannot be caught or drained, so this exercises the pure write-ahead
// recovery path — the strongest crash model the journal promises to
// survive.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace redspot {
namespace {

namespace fs = std::filesystem;

#ifndef REDSPOT_SIM_BIN
#error "REDSPOT_SIM_BIN must be defined to the redspot-sim binary path"
#endif

std::vector<std::string> sim_args(const std::string& journal_dir) {
  return {REDSPOT_SIM_BIN, "ensemble",       "--policy",  "periodic",
          "--zones",       "0",              "--seed",    "77",
          "--replications", "200",           "--shards",  "16",
          "--threads",     "2",              "--no-cache", "--journal",
          journal_dir};
}

/// Forks `args`, stdout+stderr redirected to `out_path`. Returns the pid.
pid_t spawn(const std::vector<std::string>& args, const std::string& out_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: redirect and exec.
  const int fd = ::open(out_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) _exit(127);
  ::dup2(fd, STDOUT_FILENO);
  ::dup2(fd, STDERR_FILENO);
  ::close(fd);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

int wait_for(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

/// Drops the provenance / diagnostic lines that legitimately differ
/// between an interrupted-then-resumed run and a clean one.
std::string strip_provenance(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("journal:", 0) == 0) continue;
    if (line.rfind("interrupted:", 0) == 0) continue;
    if (line.rfind("[WARN]", 0) == 0) continue;
    out << line << '\n';
  }
  return out.str();
}

std::size_t file_size(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0
             ? static_cast<std::size_t>(st.st_size)
             : 0;
}

TEST(ResumeIntegrationTest, KilledRunResumesBitIdentically) {
  const fs::path base = fs::path(testing::TempDir()) / "redspot_resume";
  fs::remove_all(base);
  const std::string dir_killed = (base / "killed").string();
  const std::string dir_clean = (base / "clean").string();
  fs::create_directories(dir_killed);
  fs::create_directories(dir_clean);
  const std::string journal_file = dir_killed + "/run.journal";
  const std::string out_victim = (base / "victim.txt").string();
  const std::string out_resumed = (base / "resumed.txt").string();
  const std::string out_clean = (base / "clean.txt").string();

  // 1. Start a run and SIGKILL it once at least one shard record hit disk
  //    (appends are a single write+fsync, so size > magic means a whole
  //    record landed). No drain, no handler — a hard crash.
  const pid_t victim = spawn(sim_args(dir_killed), out_victim);
  ASSERT_GT(victim, 0);
  bool killed = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  for (;;) {
    int status = 0;
    if (::waitpid(victim, &status, WNOHANG) == victim) {
      // Finished before we could kill it (very fast machine): the journal
      // is complete; the resume below then exercises the full-replay path.
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << slurp(out_victim);
      break;
    }
    if (file_size(journal_file) > 8) {
      ::kill(victim, SIGKILL);
      wait_for(victim);
      killed = true;
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no journal record appeared in 60s; victim output:\n"
        << slurp(out_victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(file_size(journal_file), 8u);

  // 2. Rerun the identical command against the survivor journal.
  const pid_t resumed = spawn(sim_args(dir_killed), out_resumed);
  int status = wait_for(resumed);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << slurp(out_resumed);
  const std::string resumed_text = slurp(out_resumed);
  // The resume must actually replay journaled work, not start over.
  EXPECT_NE(resumed_text.find("journal: replayed"), std::string::npos)
      << resumed_text;
  EXPECT_EQ(resumed_text.find("journal: replayed 0 shards"),
            std::string::npos)
      << "resume recomputed everything; victim killed=" << killed << "\n"
      << resumed_text;

  // 3. Reference: the same spec run cleanly in a fresh journal directory.
  const pid_t clean = spawn(sim_args(dir_clean), out_clean);
  status = wait_for(clean);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << slurp(out_clean);

  // 4. Bit-identical summaries, modulo provenance lines.
  EXPECT_EQ(strip_provenance(resumed_text), strip_provenance(slurp(out_clean)))
      << "resumed and clean summaries diverged (victim killed=" << killed
      << ")";

  fs::remove_all(base);
}

}  // namespace
}  // namespace redspot
