// Unit tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/random.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/ols.hpp"

namespace redspot {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_THROW(m(2, 0), CheckFailure);
  EXPECT_THROW(m(0, 3), CheckFailure);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), CheckFailure);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, AddSubtract) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(a + b, (Matrix{{6, 8}, {10, 12}}));
  EXPECT_EQ(b - a, (Matrix{{4, 4}, {4, 4}}));
  EXPECT_THROW(a + Matrix(3, 3), CheckFailure);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(a * b, (Matrix{{19, 22}, {43, 50}}));
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_THROW(a * Matrix(3, 2), CheckFailure);
}

TEST(Matrix, MultiplyRectangular) {
  const Matrix a{{1, 2, 3}};        // 1x3
  const Matrix b{{4}, {5}, {6}};    // 3x1
  const Matrix ab = a * b;          // 1x1
  EXPECT_EQ(ab(0, 0), 32.0);
  const Matrix ba = b * a;          // 3x3
  EXPECT_EQ(ba(2, 0), 6.0);
  EXPECT_EQ(ba(0, 2), 12.0);
}

TEST(Matrix, ScalarMultiply) {
  EXPECT_EQ((Matrix{{1, 2}} * 3.0), (Matrix{{3, 6}}));
}

TEST(Matrix, VectorMultiply) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{5, 6};
  const std::vector<double> r = a * v;
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], 17.0);
  EXPECT_EQ(r[1], 39.0);
}

TEST(Matrix, VecMat) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{5, 6};
  const std::vector<double> r = vec_mat(v, a);
  EXPECT_EQ(r[0], 23.0);
  EXPECT_EQ(r[1], 34.0);
}

TEST(Matrix, Norms) {
  const Matrix a{{3, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(Matrix{{0, 0}}), 4.0);
}

TEST(Matrix, Dot) {
  EXPECT_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(dot({1}, {1, 2}), CheckFailure);
}

// --- LU ----------------------------------------------------------------------

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const std::vector<double> x = solve(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  const Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> x = solve(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, Determinant) {
  EXPECT_NEAR(LuDecomposition(Matrix{{2, 0}, {0, 3}}).determinant(), 6.0,
              1e-12);
  EXPECT_NEAR(LuDecomposition(Matrix{{0, 1}, {1, 0}}).determinant(), -1.0,
              1e-12);
  EXPECT_NEAR(LuDecomposition(Matrix{{1, 2}, {2, 4}}).determinant(), 0.0,
              1e-12);
}

TEST(Lu, DetectsSingular) {
  LuDecomposition lu(Matrix{{1, 2}, {2, 4}});
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve(std::vector<double>{1, 2}), CheckFailure);
  EXPECT_THROW(lu.log_abs_determinant(), CheckFailure);
}

TEST(Lu, Inverse) {
  const Matrix a{{4, 7}, {2, 6}};
  const Matrix inv = LuDecomposition(a).inverse();
  const Matrix prod = a * inv;
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(2)), 1e-12);
}

TEST(Lu, LogAbsDeterminantMatchesDeterminant) {
  const Matrix a{{3, 1, 0}, {1, 4, 2}, {0, 2, 5}};
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.log_abs_determinant(), std::log(std::fabs(lu.determinant())),
              1e-12);
}

TEST(Lu, MatrixRhs) {
  const Matrix a{{2, 0}, {0, 4}};
  const Matrix b{{2, 4}, {8, 12}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_LT(x.max_abs_diff(Matrix{{1, 2}, {2, 3}}), 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  // Property: for random well-conditioned A and x, solve(A, A x) == x.
  Rng rng(314);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(6);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
      a(r, r) += static_cast<double>(n);  // diagonal dominance
    }
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-5, 5);
    const std::vector<double> b = a * x;
    const std::vector<double> got = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], x[i], 1e-9);
  }
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), CheckFailure);
}

// --- OLS ----------------------------------------------------------------------

TEST(Ols, RecoversExactLinearModel) {
  // y = 2 + 3 x, no noise.
  Matrix x(10, 2);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = static_cast<double>(i);
    y[i] = 2.0 + 3.0 * static_cast<double>(i);
  }
  const OlsFit fit = ols_fit(x, y);
  EXPECT_NEAR(fit.beta[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.beta[1], 3.0, 1e-10);
  EXPECT_NEAR(fit.rss, 0.0, 1e-10);
}

TEST(Ols, ResidualsOrthogonalToDesign) {
  Rng rng(2718);
  Matrix x(50, 3);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.normal();
    x(i, 2) = rng.normal();
    y[i] = 1.0 + 0.5 * x(i, 1) - 2.0 * x(i, 2) + rng.normal(0, 0.1);
  }
  const OlsFit fit = ols_fit(x, y);
  for (std::size_t j = 0; j < 3; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 50; ++i) acc += x(i, j) * fit.residuals[i];
    EXPECT_NEAR(acc, 0.0, 1e-8);
  }
}

TEST(Ols, ThrowsOnCollinearDesign) {
  Matrix x(5, 2);
  std::vector<double> y(5, 1.0);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = 2.0;  // collinear with the intercept
  }
  EXPECT_THROW(ols_fit(x, y), CheckFailure);
}

TEST(Ols, ThrowsOnUnderdetermined) {
  EXPECT_THROW(ols_fit(Matrix(2, 3), std::vector<double>(2, 0.0)),
               CheckFailure);
}

TEST(Ols, MultiResponseMatchesPerColumn) {
  Rng rng(99);
  Matrix x(30, 2);
  Matrix y(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.normal();
    y(i, 0) = 2.0 + x(i, 1) + rng.normal(0, 0.01);
    y(i, 1) = -1.0 + 4.0 * x(i, 1) + rng.normal(0, 0.01);
  }
  const MultiOlsFit multi = ols_fit_multi(x, y);
  for (std::size_t col = 0; col < 2; ++col) {
    std::vector<double> yc(30);
    for (std::size_t i = 0; i < 30; ++i) yc[i] = y(i, col);
    const OlsFit single = ols_fit(x, yc);
    EXPECT_NEAR(multi.beta(0, col), single.beta[0], 1e-10);
    EXPECT_NEAR(multi.beta(1, col), single.beta[1], 1e-10);
    for (std::size_t i = 0; i < 30; ++i)
      EXPECT_NEAR(multi.residuals(i, col), single.residuals[i], 1e-10);
  }
}

}  // namespace
}  // namespace redspot
