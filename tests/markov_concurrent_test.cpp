// Concurrent-reader stress for IncrementalMarkovModel's query path.
//
// The serve layer shares one sliding model among many tenants: the const
// expected_uptime overload is the many-reader path (atomic memo slots),
// and observe() is the single writer, excluded from readers by the
// caller's epoch-snapshot discipline (a shared_mutex here; the request
// batcher's per-key serialization in src/serve/). Run under TSan these
// tests prove (a) readers racing readers on memo fills are clean, and
// (b) readers racing a slide through the documented exclusion are clean
// and always observe a coherent epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "markov/incremental.hpp"
#include "markov/uptime.hpp"
#include "trace/price_series.hpp"

namespace redspot {
namespace {

/// A wandering price series: enough distinct prices to exercise both the
/// memoized multi-state path and out-of-bid early-outs.
PriceSeries wandering_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Money> samples;
  samples.reserve(n);
  std::int64_t cents = 30;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = rng.next_u64();
    if (r % 7 == 0) cents += 1 + static_cast<std::int64_t>(r % 5);
    if (r % 11 == 0) cents -= 1 + static_cast<std::int64_t>(r % 3);
    if (cents < 25) cents = 25;
    if (cents > 60) cents = 60;
    samples.push_back(Money::cents(cents));
  }
  return PriceSeries(0, kPriceStep, std::move(samples));
}

TEST(MarkovConcurrent, ConstOverloadMatchesMutableBitForBit) {
  const PriceSeries series = wandering_series(600, 17);
  IncrementalMarkovModel a(32), b(32);
  const std::vector<Money> bids = {Money::cents(26), Money::cents(31),
                                   Money::cents(45), Money::dollars(1.00)};
  UptimeScratch scratch;
  for (std::size_t lo = 0; lo + 576 <= series.size(); lo += 3) {
    const PriceView w(series.time_of(lo), kPriceStep,
                      series.samples().subspan(lo, 576));
    a.observe(w);
    b.observe(w);
    const Money price = series.sample(lo + 575);
    for (Money bid : bids) {
      EXPECT_EQ(a.expected_uptime(price, bid),
                b.expected_uptime(price, bid, scratch));
    }
  }
  // The const path fills the same memo: the mutable path then hits it.
  EXPECT_GT(b.memo_hits() + b.memo_misses(), 0u);
}

TEST(MarkovConcurrent, ReadersRacingReadersOnMemoFills) {
  const PriceSeries series = wandering_series(600, 23);
  IncrementalMarkovModel model(32);
  model.observe(series.view(0, 576 * kPriceStep));

  constexpr int kReaders = 8;
  constexpr int kQueries = 2000;
  std::vector<Duration> expected;
  {
    UptimeScratch scratch;
    for (int q = 0; q < kQueries; ++q) {
      const Money price = series.sample(static_cast<std::size_t>(q) % 576);
      const Money bid = Money::cents(28 + q % 30);
      expected.push_back(model.expected_uptime(price, bid, scratch));
    }
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      UptimeScratch scratch;  // per-reader scratch
      for (int q = 0; q < kQueries; ++q) {
        const Money price = series.sample(static_cast<std::size_t>(q) % 576);
        const Money bid = Money::cents(28 + q % 30);
        if (model.expected_uptime(price, bid, scratch) !=
            expected[static_cast<std::size_t>(q)])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(MarkovConcurrent, ReadersRacingASlideUnderSharedMutex) {
  const PriceSeries series = wandering_series(1100, 29);
  IncrementalMarkovModel model(32);
  std::shared_mutex mutex;  // the documented writer-exclusion mechanism
  std::atomic<int> bad{0};

  {
    std::unique_lock lock(mutex);
    model.observe(series.view(0, 576 * kPriceStep));
  }

  // Both sides run a FIXED amount of work (no done-flag spin): default
  // pthread rwlocks favor readers, and readers spinning until a writer
  // flag would starve the writer indefinitely under TSan's slowdown.
  constexpr int kReaders = 6;
  constexpr int kQueriesPerReader = 600;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      UptimeScratch scratch;
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int q = 0; q < kQueriesPerReader; ++q) {
        std::shared_lock lock(mutex);
        // Any sample in the series is a representative query price; the
        // answer must be non-negative and capped whatever the epoch.
        const Money price = series.sample(rng.next_u64() % series.size());
        const Money bid = Money::cents(28 + static_cast<std::int64_t>(
                                                rng.next_u64() % 30));
        const Duration up = model.expected_uptime(price, bid, scratch);
        if (up < 0 || up > kDefaultUptimeCap)
          bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: slide the window forward one sample at a time, exactly the
  // serve tick cadence.
  for (std::size_t lo = 1; lo + 576 <= series.size(); ++lo) {
    std::unique_lock lock(mutex);
    const PriceView w(series.time_of(lo), kPriceStep,
                      series.samples().subspan(lo, 576));
    model.observe(w);
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(model.incremental_slides(), 0u);
}

TEST(MarkovConcurrent, BinnedRefitGrowingTheStateSetGrowsTheMemo) {
  // Regression: a binned slide refits through build_markov_model_presorted,
  // which can yield MORE states than the last full rebuild did — quantile
  // bins collapse while duplicate-heavy mass dominates the window and
  // spread back out as it leaves. The writer must grow the memo at refit
  // time; the reader path indexes by state*n+alive and cannot resize.
  constexpr std::size_t kWindow = 256;
  constexpr std::size_t kMax = 8;
  std::vector<Money> samples;
  // First window: 12 distinct prices (> kMax, so the mode is binned) with
  // ~95% of the mass piled on 30 cents, collapsing the bin representatives.
  for (std::size_t i = 0; i < kWindow; ++i) {
    samples.push_back(i % 20 == 0
                          ? Money::cents(25 + static_cast<std::int64_t>(
                                                  (i / 20) % 12))
                          : Money::cents(30));
  }
  // Tail: the same 12 prices spread evenly, so slid windows' bins fan out.
  for (std::size_t i = 0; i < kWindow; ++i)
    samples.push_back(Money::cents(25 + static_cast<std::int64_t>(i % 12)));
  const PriceSeries series(0, kPriceStep, std::move(samples));

  IncrementalMarkovModel slid(kMax);
  slid.observe(PriceView(0, kPriceStep, series.samples().subspan(0, kWindow)));
  const std::size_t states_at_rebuild = slid.model().num_states();

  UptimeScratch scratch;
  std::size_t max_states_seen = states_at_rebuild;
  for (std::size_t lo = 1; lo + kWindow <= series.size(); ++lo) {
    const PriceView w(series.time_of(lo), kPriceStep,
                      series.samples().subspan(lo, kWindow));
    slid.observe(w);
    if (slid.model().num_states() > max_states_seen)
      max_states_seen = slid.model().num_states();
    IncrementalMarkovModel fresh(kMax);
    fresh.observe(w);
    const Money price = w.sample(kWindow - 1);
    for (std::int64_t c = 24; c <= 40; c += 2) {
      ASSERT_EQ(slid.expected_uptime(price, Money::cents(c), scratch),
                fresh.expected_uptime(price, Money::cents(c)))
          << "lo=" << lo << " bid=" << c << "c";
    }
  }
  // Only a regression test if the state set actually outgrew the memo the
  // full rebuild sized.
  EXPECT_GT(max_states_seen, states_at_rebuild);
  EXPECT_GT(slid.incremental_slides(), 0u);
}

}  // namespace
}  // namespace redspot
