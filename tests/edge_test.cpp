// Edge-case coverage: terminations in transient zone states, billing-guard
// violations, boundary values of the small utilities, and monotonicity
// properties of the Adaptive estimator.
#include <gtest/gtest.h>

#include <sstream>

#include "core/adaptive/estimator.hpp"
#include "core/engine.hpp"
#include "test_util.hpp"
#include "trace/availability.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::run_fixed;
using testing::single_zone;
using testing::small_experiment;
using testing::step_series;

TEST(EngineEdge, TerminationDuringRestartLosesNoCommittedProgress) {
  // Zone runs 1h05m (one ckpt committed), dies, recovers at t=1h40m with
  // t_r=300 in flight, and dies AGAIN at 1h45m mid-restart. The committed
  // checkpoint must survive both.
  const SpotMarket market = make_market(single_zone(step_series({
      {0.30, 13},  // up through the first boundary ckpt (55m-1h)
      {2.00, 7},   // dead until 1h40m
      {0.30, 1},   // recovery window: restart starts (t_r = 300)
      {2.00, 6},   // killed again during/after the restart
      {0.30, 60 * 12},
  })));
  const Experiment e = small_experiment(3.0, 1.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.out_of_bid_terminations, 2);
  EXPECT_GE(r.checkpoints_committed, 1);
  // The final recovery still loads the hour-1 checkpoint.
  EXPECT_GE(r.restarts, 1);
}

TEST(EngineEdge, TerminationWhileQueuedIsFree) {
  // Queue delay 600 s; the price spikes 5 min after the request, while
  // the instance is still queued: no charge, no restart.
  const SpotMarket market = make_market(
      single_zone(step_series({{0.30, 1}, {2.00, 6}, {0.30, 60 * 12}})),
      /*queue_delay=*/600);
  const Experiment e = small_experiment(1.0, 2.0, 300);
  EngineOptions options;
  options.record_line_items = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  // First charge only happens once the second request materializes.
  for (const LineItem& item : r.line_items)
    EXPECT_EQ(item.amount, Money::dollars(0.30));
}

TEST(EngineEdge, OnDemandDurationIncludesRestartWhenCheckpointed) {
  // Run ~1h on spot (one committed hour-boundary ckpt), then the market
  // turns hostile forever: the on-demand remainder includes t_r.
  const SpotMarket market = make_market(single_zone(
      step_series({{0.30, 13}, {2.00, 60 * 12}})));
  const Experiment e = small_experiment(4.0, 0.5, 300);
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_TRUE(r.switched_to_on_demand);
  ASSERT_GE(r.checkpoints_committed, 1);
  // Committed 55 min; remaining = 4h - 55m + t_r = 3h10m -> 4 od hours.
  EXPECT_EQ(r.on_demand_seconds, 4 * kHour - 55 * kMinute + 300);
  EXPECT_EQ(r.on_demand_cost, Money::dollars(4 * 2.40));
}

TEST(BillingEdge, GuardsOnMisuse) {
  BillingLedger ledger;
  EXPECT_THROW(ledger.spot_stopped_at_boundary(0), CheckFailure);
  EXPECT_THROW(ledger.cycle_boundary(0, Money::dollars(0.3)), CheckFailure);
  ledger.spot_started(0, 0, Money::dollars(0.3));
  EXPECT_THROW(ledger.spot_started(0, 5, Money::dollars(0.3)),
               CheckFailure);
}

TEST(UtilityEdge, MoneyStreamOperator) {
  std::ostringstream os;
  os << Money::dollars(2.40) << " " << Money::cents(27);
  EXPECT_EQ(os.str(), "$2.40 $0.27");
}

TEST(UtilityEdge, AsciiBarRejectsEmpty) {
  EXPECT_THROW(ascii_bar({}, kPriceStep), CheckFailure);
  const PriceSeries s = constant_series(0.3, 2);
  const auto segs =
      availability_segments(s, Money::cents(81), 0, s.end());
  EXPECT_THROW(ascii_bar(segs, 0), CheckFailure);
}

TEST(UtilityEdge, NextChangeFromFinalSample) {
  const PriceSeries s = step_series({{0.3, 2}, {0.5, 1}});
  EXPECT_EQ(s.next_change(2 * kPriceStep), kNever);
}

TEST(EstimatorProperty, ProgressRateNonDecreasingInBid) {
  // On the calibrated traces, raising the bid can only help availability
  // and therefore the predicted progress rate for a fixed policy/zones.
  const ZoneTraceSet traces = paper_traces(42).window(33 * kDay, 35 * kDay);
  std::vector<Money> grid;
  for (Money b = Money::cents(27); b <= Money::dollars(3.07);
       b += Money::cents(40))
    grid.push_back(b);
  const HistoryStats hist(traces, traces.start(), traces.end(), grid);
  EstimatorInputs in;
  in.remaining_compute = 20 * kHour;
  in.remaining_time = 23 * kHour;
  double prev = -1.0;
  for (std::size_t b = 0; b < grid.size(); ++b) {
    const auto e = estimate_permutation(hist, b, {0, 1, 2},
                                        PolicyKind::kPeriodic, in);
    EXPECT_GE(e.progress_rate, prev - 0.05) << grid[b].str();
    prev = e.progress_rate;
  }
}

TEST(EstimatorProperty, MoreZonesNeverReducePredictedRate) {
  const ZoneTraceSet traces = paper_traces(42).window(33 * kDay, 35 * kDay);
  const HistoryStats hist(traces, traces.start(), traces.end(),
                          {Money::cents(81)});
  EstimatorInputs in;
  in.remaining_compute = 20 * kHour;
  in.remaining_time = 23 * kHour;
  const auto one =
      estimate_permutation(hist, 0, {0}, PolicyKind::kMarkovDaly, in);
  const auto three = estimate_permutation(hist, 0, {0, 1, 2},
                                          PolicyKind::kMarkovDaly, in);
  EXPECT_GE(three.progress_rate + 0.05, one.progress_rate);
  EXPECT_GE(three.cost_rate, one.cost_rate);
}

TEST(EngineEdge, ZeroSlackDeadlineEqualsComputeGoesStraightOnDemand) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 60 * 12)));
  Experiment e = small_experiment(2.0, 0.0, 300);  // D == C
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_TRUE(r.switched_to_on_demand);
  EXPECT_EQ(r.spot_cost, Money());
  EXPECT_EQ(r.finish_time, e.deadline_time());
}

TEST(EngineEdge, IterationGranularityLimitsCheckpointValue) {
  // 30-minute iterations: a checkpoint can only capture whole iterations.
  const SpotMarket market = make_market(single_zone(
      step_series({{0.30, 13}, {2.00, 6}, {0.30, 60 * 12}})));
  Experiment e = small_experiment(2.0, 2.0, 300);
  e.app.iteration_time = 30 * kMinute;
  EngineOptions options;
  options.record_timeline = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  // Committed values land on 30-minute marks: the hour-boundary Periodic
  // checkpoint at 55 min of progress can only capture 30 min.
  bool saw_ckpt = false;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.kind != TimelineKind::kCheckpointDone) continue;
    saw_ckpt = true;
    EXPECT_TRUE(ev.detail == "progress=0s" ||
                ev.detail == "progress=30m00s" ||
                ev.detail.find("h00m") != std::string::npos ||
                ev.detail.find("h30m") != std::string::npos)
        << ev.detail;
  }
  EXPECT_TRUE(saw_ckpt);
}

TEST(TerminationNoticeEdge, NoticeShorterThanCheckpointNeverStartsOne) {
  // Warning of 120 s with t_c = 300 s: no emergency checkpoint can fit, so
  // none may start — the doomed zone just computes out its 120 s and dies
  // exactly at notice expiry.
  const SpotMarket market = make_market(single_zone(
      step_series({{0.30, 6}, {2.00, 6}, {0.30, 60 * 12}})));
  const Experiment e = small_experiment(2.0, 2.0, 300);
  EngineOptions options;
  options.termination_notice = 120;
  options.record_timeline = true;
  const RunResult r = run_fixed(market, e, PolicyKind::kPeriodic,
                                Money::cents(81), {0}, options);
  EXPECT_TRUE(r.met_deadline);
  // Price crosses the bid at t = 30 min; death at 30 min + 120 s.
  const SimTime doom = 30 * kMinute + 120;
  bool saw_doom = false;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.time > doom) break;  // recovery may legitimately checkpoint later
    EXPECT_NE(ev.kind, TimelineKind::kCheckpointStart)
        << "checkpoint started at " << format_time(ev.time)
        << " despite notice < t_c";
    if (ev.kind == TimelineKind::kOutOfBid && ev.time == doom)
      saw_doom = true;
  }
  EXPECT_TRUE(saw_doom);
  // The doomed 120 s still count as (free) billed up-time.
  EXPECT_EQ(r.out_of_bid_terminations, 1);
}

TEST(TerminationNoticeEdge, NoticeArrivingMidCheckpointLetsTheWriteFinish) {
  // Periodic starts its boundary checkpoint at 55 min; the price crosses
  // the bid at that same tick, so the notice finds the write in flight.
  // The write ends at the hour boundary — inside the 300 s warning — and
  // must commit; the recovery then loads it instead of starting over.
  const SpotMarket market = make_market(single_zone(
      step_series({{0.30, 11}, {2.00, 6}, {0.30, 60 * 12}})));
  const Experiment e = small_experiment(2.0, 2.0, 300);
  EngineOptions options;
  options.termination_notice = 300;
  const RunResult with = run_fixed(market, e, PolicyKind::kPeriodic,
                                   Money::cents(81), {0}, options);
  EXPECT_TRUE(with.met_deadline);
  EXPECT_GE(with.checkpoints_committed, 1);
  EXPECT_EQ(with.restarts, 1);

  // Without the notice the same crossing cuts the write mid-flight:
  // nothing commits and the recovery restarts from scratch.
  const RunResult without = run_fixed(market, e, PolicyKind::kPeriodic,
                                      Money::cents(81), {0});
  EXPECT_EQ(without.restarts, 0);
  EXPECT_LT(with.finish_time, without.finish_time);
}

}  // namespace
}  // namespace redspot
