// Unit tests for the common substrate: Money, time helpers, the RNG, the
// check macros, logging, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/money.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/time.hpp"

namespace redspot {
namespace {

using namespace money_literals;

// --- Money ------------------------------------------------------------------

TEST(Money, DefaultIsZero) {
  EXPECT_EQ(Money().micros(), 0);
  EXPECT_EQ(Money().to_double(), 0.0);
}

TEST(Money, DollarsIsExactOnPriceGrid) {
  EXPECT_EQ(Money::dollars(0.27).micros(), 270'000);
  EXPECT_EQ(Money::dollars(2.40).micros(), 2'400'000);
  EXPECT_EQ(Money::dollars(20.02).micros(), 20'020'000);
  EXPECT_EQ(Money::dollars(-1.5).micros(), -1'500'000);
}

TEST(Money, CentsAndMicros) {
  EXPECT_EQ(Money::cents(81), Money::dollars(0.81));
  EXPECT_EQ(Money::from_micros(123).micros(), 123);
}

TEST(Money, Arithmetic) {
  const Money a = Money::dollars(0.27);
  const Money b = Money::dollars(0.54);
  EXPECT_EQ(a + a, b);
  EXPECT_EQ(b - a, a);
  EXPECT_EQ(-a, Money::dollars(-0.27));
  EXPECT_EQ(a * 3, Money::dollars(0.81));
  EXPECT_EQ(3 * a, Money::dollars(0.81));
  Money c = a;
  c += a;
  EXPECT_EQ(c, b);
  c -= a;
  EXPECT_EQ(c, a);
}

TEST(Money, RepeatedAdditionStaysExact) {
  // The motivating case for integer micro-dollars: 1000 x $0.27.
  Money total;
  for (int i = 0; i < 1000; ++i) total += Money::dollars(0.27);
  EXPECT_EQ(total, Money::dollars(270.00));
}

TEST(Money, Ordering) {
  EXPECT_LT(Money::dollars(0.27), Money::dollars(0.28));
  EXPECT_LE(Money::dollars(0.27), Money::dollars(0.27));
  EXPECT_GT(Money::dollars(2.40), Money::dollars(0.81));
}

TEST(Money, ScaledRoundsToNearestMicro) {
  EXPECT_EQ(Money::dollars(1.00).scaled(0.5), Money::dollars(0.50));
  EXPECT_EQ(Money::from_micros(3).scaled(0.5), Money::from_micros(2));  // 1.5 -> 2
}

TEST(Money, Ratio) {
  EXPECT_DOUBLE_EQ(Money::dollars(24.0).ratio(Money::dollars(48.0)), 0.5);
  EXPECT_THROW((void)Money::dollars(1).ratio(Money()), CheckFailure);
}

TEST(Money, Parse) {
  EXPECT_EQ(Money::parse("0.27"), Money::dollars(0.27));
  EXPECT_EQ(Money::parse("$2.40"), Money::dollars(2.40));
  EXPECT_EQ(Money::parse("-0.5"), Money::dollars(-0.50));
  EXPECT_EQ(Money::parse(" 20.02 "), Money::dollars(20.02));
  EXPECT_EQ(Money::parse("48"), Money::dollars(48.0));
  EXPECT_THROW(Money::parse(""), CheckFailure);
  EXPECT_THROW(Money::parse("abc"), CheckFailure);
  EXPECT_THROW(Money::parse("1.2.3"), CheckFailure);
}

TEST(Money, Str) {
  EXPECT_EQ(Money::dollars(0.27).str(), "$0.27");
  EXPECT_EQ(Money::dollars(48.0).str(), "$48.00");
  EXPECT_EQ(Money::dollars(-1.5).str(), "-$1.50");
  EXPECT_EQ(Money::dollars(0.005).str(), "$0.005");
}

TEST(Money, Literals) {
  EXPECT_EQ(0.27_usd, Money::dollars(0.27));
  EXPECT_EQ(48_usd, Money::dollars(48.0));
}

TEST(Money, DollarsRejectsNonFinite) {
  EXPECT_THROW(Money::dollars(std::numeric_limits<double>::quiet_NaN()),
               CheckFailure);
  EXPECT_THROW(Money::dollars(std::numeric_limits<double>::infinity()),
               CheckFailure);
}

// --- Time -------------------------------------------------------------------

TEST(Time, Constants) {
  EXPECT_EQ(kHour, 3600);
  EXPECT_EQ(kPriceStep, 300);
  EXPECT_EQ(kDay, 86400);
}

TEST(Time, HoursConversion) {
  EXPECT_EQ(hours(1.0), kHour);
  EXPECT_EQ(hours(20.0), 20 * kHour);
  EXPECT_EQ(hours(0.5), 1800);
  EXPECT_DOUBLE_EQ(to_hours(kHour), 1.0);
  EXPECT_DOUBLE_EQ(to_hours(90 * kMinute), 1.5);
}

TEST(Time, HourFloorAndNext) {
  EXPECT_EQ(hour_floor(0), 0);
  EXPECT_EQ(hour_floor(3599), 0);
  EXPECT_EQ(hour_floor(3600), 3600);
  EXPECT_EQ(next_hour(0), 3600);
  EXPECT_EQ(next_hour(3600), 7200);
  EXPECT_EQ(next_hour(3601), 7200);
}

TEST(Time, PriceStepFloor) {
  EXPECT_EQ(price_step_floor(0), 0);
  EXPECT_EQ(price_step_floor(299), 0);
  EXPECT_EQ(price_step_floor(300), 300);
  EXPECT_EQ(price_step_floor(301), 300);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(0), "0+00:00:00");
  EXPECT_EQ(format_time(kDay + kHour + kMinute + 1), "1+01:01:01");
  EXPECT_EQ(format_time(kNever), "never");
  EXPECT_EQ(format_duration(90 * kMinute), "1h30m");
  EXPECT_EQ(format_duration(75), "1m15s");
  EXPECT_EQ(format_duration(42), "42s");
  EXPECT_EQ(format_duration(-kHour), "-1h00m");
}

// --- Check ------------------------------------------------------------------

TEST(Check, PassAndFail) {
  EXPECT_NO_THROW(REDSPOT_CHECK(1 + 1 == 2));
  EXPECT_THROW(REDSPOT_CHECK(false), CheckFailure);
}

TEST(Check, MessageContainsDetail) {
  try {
    REDSPOT_CHECK_MSG(false, "x=" << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("x=42"), std::string::npos);
  }
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.5);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), CheckFailure);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_THROW(rng.normal(0.0, -1.0), CheckFailure);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), CheckFailure);
}

TEST(Rng, LognormalIsExpOfNormal) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(1.0, 0.5), 0.0);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// --- Logging ----------------------------------------------------------------

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  LOG_DEBUG << "suppressed";  // must not crash
  set_log_level(before);
}

// --- ThreadPool / parallel_for ----------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for(pool, 0, 10, [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, DefaultPoolWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 50, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace redspot
