// Unit tests for Daly's interval, the checkpoint store and the cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "app/application.hpp"
#include "ckpt/cost_model.hpp"
#include "ckpt/daly.hpp"
#include "ckpt/store.hpp"
#include "common/check.hpp"

namespace redspot {
namespace {

TEST(Daly, MatchesClosedFormHandComputation) {
  // delta = 300, M = 3600: tau = sqrt(2*300*3600)(1 + sqrt(r)/3 + r/9) - 300
  // with r = 300/7200.
  const double delta = 300.0, m = 3600.0, r = delta / (2 * m);
  const double expected =
      std::sqrt(2 * delta * m) * (1 + std::sqrt(r) / 3 + r / 9) - delta;
  EXPECT_NEAR(static_cast<double>(daly_interval(300, 3600)), expected, 1.0);
}

TEST(Daly, DegenerateBranchReturnsMtbf) {
  // delta >= 2M: checkpointing cannot keep up; tau = M.
  EXPECT_EQ(daly_interval(900, 400), 400);
  EXPECT_EQ(daly_interval(900, 450), 450);
}

TEST(Daly, MonotoneInMtbf) {
  Duration prev = 0;
  for (Duration m : {kHour, 2 * kHour, 6 * kHour, kDay, 7 * kDay}) {
    const Duration tau = daly_interval(300, m);
    EXPECT_GT(tau, prev);
    prev = tau;
  }
}

TEST(Daly, LargerCheckpointCostGivesLargerInterval) {
  EXPECT_GT(daly_interval(900, kDay), daly_interval(300, kDay));
}

TEST(Daly, AtLeastOneSecond) {
  EXPECT_GE(daly_interval(1, 1), 1);
  EXPECT_THROW(daly_interval(0, 100), CheckFailure);
  EXPECT_THROW(daly_interval(100, 0), CheckFailure);
}

TEST(Daly, HigherOrderExceedsYoung) {
  // Daly's correction terms are positive, so daly >= young.
  for (Duration m : {kHour, 6 * kHour, kDay}) {
    EXPECT_GE(daly_interval(300, m), young_interval(300, m));
  }
}

TEST(Daly, IntervalNearEfficiencyOptimum) {
  // Property: Daly's interval should (approximately) maximize the
  // first-order efficiency model; perturbing it by 25% must not help.
  for (Duration m : {kHour, 4 * kHour, kDay}) {
    const Duration tau = daly_interval(300, m);
    const double at_tau = checkpoint_efficiency(tau, 300, 300, m);
    const double lower =
        checkpoint_efficiency(std::max<Duration>(1, tau / 2), 300, 300, m);
    const double higher = checkpoint_efficiency(tau * 2, 300, 300, m);
    EXPECT_GE(at_tau, lower * 0.999);
    EXPECT_GE(at_tau, higher * 0.999);
  }
}

TEST(Efficiency, BoundsAndDegradation) {
  const double e = checkpoint_efficiency(3300, 300, 300, kDay);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 1.0);
  // Shorter MTBF means lower efficiency at the same interval.
  EXPECT_LT(checkpoint_efficiency(3300, 300, 300, kHour),
            checkpoint_efficiency(3300, 300, 300, kDay));
  EXPECT_THROW(checkpoint_efficiency(0, 300, 300, kHour), CheckFailure);
}

// --- CheckpointStore ----------------------------------------------------------

TEST(Store, StartsEmpty) {
  CheckpointStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.count(), 0u);
  EXPECT_EQ(store.latest_progress(), 0);
}

TEST(Store, CommitsAdvanceProgress) {
  CheckpointStore store;
  store.commit(100, 50);
  store.commit(200, 120);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.latest_progress(), 120);
  EXPECT_EQ(store.all()[0].committed_at, 100);
}

TEST(Store, ProgressNeverRegresses) {
  CheckpointStore store;
  store.commit(100, 120);
  store.commit(200, 50);  // a lagging replica's checkpoint
  EXPECT_EQ(store.latest_progress(), 120);
  EXPECT_EQ(store.count(), 2u);
}

TEST(Store, RejectsTimeTravel) {
  CheckpointStore store;
  store.commit(100, 10);
  EXPECT_THROW(store.commit(99, 20), CheckFailure);
  EXPECT_NO_THROW(store.commit(100, 20));  // same instant is fine
}

TEST(Store, RejectsNegativeProgress) {
  CheckpointStore store;
  EXPECT_THROW(store.commit(0, -1), CheckFailure);
}

TEST(Store, InvalidateLatestFallsBackToPreviousGood) {
  CheckpointStore store;
  store.commit(100, 50);
  store.commit(200, 120);
  store.invalidate_latest();  // validation caught the 120 as corrupt
  EXPECT_EQ(store.latest_progress(), 50);
  EXPECT_EQ(store.valid_count(), 1u);
  EXPECT_EQ(store.invalidated_count(), 1u);
  EXPECT_FALSE(store.all()[1].valid);
  // Rolling back everything leaves "restart from scratch".
  store.invalidate_latest();
  EXPECT_EQ(store.latest_progress(), 0);
  EXPECT_EQ(store.valid_count(), 0u);
}

TEST(Store, InvalidateLatestSkipsAlreadyInvalidEntries) {
  CheckpointStore store;
  store.commit(100, 50);
  store.commit(200, 120);
  store.invalidate(1);
  store.invalidate_latest();  // newest VALID entry is index 0
  EXPECT_EQ(store.valid_count(), 0u);
  EXPECT_EQ(store.latest_progress(), 0);
}

TEST(Store, InvalidateByIndexIsIdempotent) {
  CheckpointStore store;
  store.commit(100, 50);
  store.commit(200, 120);
  store.invalidate(0);
  store.invalidate(0);
  EXPECT_EQ(store.invalidated_count(), 1u);
  EXPECT_EQ(store.latest_progress(), 120);
  EXPECT_THROW(store.invalidate(2), CheckFailure);  // out of range
}

TEST(Store, InvalidateLatestRequiresAValidEntry) {
  CheckpointStore store;
  EXPECT_THROW(store.invalidate_latest(), CheckFailure);
  store.commit(100, 50);
  store.invalidate_latest();
  EXPECT_THROW(store.invalidate_latest(), CheckFailure);
}

// --- Cost model ----------------------------------------------------------------

TEST(CostModel, PaperPresets) {
  EXPECT_EQ(CheckpointCosts::low().checkpoint, 300);
  EXPECT_EQ(CheckpointCosts::low().restart, 300);
  EXPECT_EQ(CheckpointCosts::high().checkpoint, 900);
}

TEST(CostModel, CostsFromIo) {
  // 150 GiB at 0.25 GiB/s = 600 s transfer + 100 s overhead.
  const CheckpointCosts c = costs_from_io(150.0, 0.25, 100);
  EXPECT_EQ(c.checkpoint, 700);
  EXPECT_EQ(c.restart, 700);
  EXPECT_THROW(costs_from_io(1.0, 0.0, 0), CheckFailure);
  EXPECT_THROW(costs_from_io(-1.0, 1.0, 0), CheckFailure);
}

// --- Application model -----------------------------------------------------------

TEST(App, IterationAlignment) {
  const AppModel app{"x", 1000, 30, 1};
  EXPECT_EQ(iteration_aligned(app, 0), 0);
  EXPECT_EQ(iteration_aligned(app, 29), 0);
  EXPECT_EQ(iteration_aligned(app, 30), 30);
  EXPECT_EQ(iteration_aligned(app, 89), 60);
  EXPECT_THROW(iteration_aligned(app, -1), CheckFailure);
}

TEST(App, PaperDefault) {
  const AppModel app = AppModel::paper_default();
  EXPECT_EQ(app.total_compute, 20 * kHour);
  EXPECT_EQ(app.iteration_time, 1);
}

TEST(App, PresetsAreConsistent) {
  EXPECT_GT(weather_preset().model.total_compute, 0);
  EXPECT_EQ(cfd_preset().costs.checkpoint, cfd_preset().costs.restart);
  EXPECT_GT(cfd_preset().costs.checkpoint, 600);  // the high-t_c regime
  EXPECT_LT(montecarlo_preset().costs.checkpoint, 300);
}

}  // namespace
}  // namespace redspot
