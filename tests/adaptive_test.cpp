// Unit tests for the Adaptive subsystem: HistoryStats, the permutation
// estimator, and the AdaptiveStrategy end-to-end on scripted markets.
#include <gtest/gtest.h>

#include "core/adaptive/adaptive_runner.hpp"
#include "core/adaptive/estimator.hpp"
#include "core/adaptive/history_stats.hpp"
#include "core/engine.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::small_experiment;
using testing::step_series;

// --- HistoryStats -------------------------------------------------------------------

TEST(HistoryStats, AvailabilityAndPaidPrice) {
  // Zone: 6 steps at 0.30, 2 at 1.00 (8 total).
  const ZoneTraceSet traces =
      testing::single_zone(step_series({{0.30, 6}, {1.00, 2}}));
  const HistoryStats hist(traces, 0, traces.end(),
                          {Money::cents(81), Money::dollars(1.50)});
  const ZoneBidStats& low = hist.stats(0, 0);
  EXPECT_DOUBLE_EQ(low.availability, 0.75);
  EXPECT_NEAR(low.mean_paid_price, 0.30, 1e-9);
  const ZoneBidStats& high = hist.stats(0, 1);
  EXPECT_DOUBLE_EQ(high.availability, 1.0);
  EXPECT_NEAR(high.mean_paid_price, (6 * 0.30 + 2 * 1.00) / 8, 1e-9);
}

TEST(HistoryStats, InterruptionsAndSpells) {
  // up(2) down(2) up(2) down(2): two interruptions, mean spell 2 steps.
  const ZoneTraceSet traces = testing::single_zone(
      step_series({{0.3, 2}, {1.0, 2}, {0.3, 2}, {1.0, 2}}));
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  const ZoneBidStats& st = hist.stats(0, 0);
  EXPECT_NEAR(st.mean_up_spell, 2.0 * kPriceStep, 1e-9);
  // 2 interruptions over 8 steps = 2400 s.
  EXPECT_NEAR(st.interruptions_per_hour, 2.0 / (2400.0 / 3600.0), 1e-9);
}

TEST(HistoryStats, CombinedAvailabilityAndOutageRate) {
  const ZoneTraceSet traces = testing::zones({
      step_series({{0.3, 2}, {1.0, 2}, {1.0, 2}, {1.0, 2}}),
      step_series({{1.0, 2}, {0.3, 2}, {1.0, 2}, {0.3, 2}}),
  });
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  EXPECT_DOUBLE_EQ(hist.combined_availability({0, 1}, 0), 0.75);
  EXPECT_DOUBLE_EQ(hist.combined_availability({0}, 0), 0.25);
  // any-up: steps 0-3 up, 4-5 down, 6-7 up -> one full outage.
  EXPECT_NEAR(hist.full_outage_rate({0, 1}, 0),
              1.0 / (8.0 * kPriceStep / 3600.0), 1e-9);
}

TEST(HistoryStats, ValidatesArguments) {
  const ZoneTraceSet traces =
      testing::single_zone(constant_series(0.3, 8));
  EXPECT_THROW(HistoryStats(traces, 0, traces.end(), {}), CheckFailure);
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  EXPECT_THROW(hist.stats(5, 0), CheckFailure);
  EXPECT_THROW(hist.stats(0, 1), CheckFailure);
  EXPECT_THROW(hist.combined_availability({}, 0), CheckFailure);
}

// --- Estimator -----------------------------------------------------------------------

EstimatorInputs basic_inputs() {
  EstimatorInputs in;
  in.remaining_compute = 4 * kHour;
  in.remaining_time = 6 * kHour;
  in.checkpoint_cost = 300;
  in.restart_cost = 300;
  return in;
}

TEST(Estimator, AlwaysUpZoneIsPureSpot) {
  const ZoneTraceSet traces =
      testing::single_zone(constant_series(0.30, 48));
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  const PermutationEstimate e = estimate_permutation(
      hist, 0, {0}, PolicyKind::kPeriodic, basic_inputs());
  EXPECT_GT(e.progress_rate, 0.9);
  EXPECT_EQ(e.on_demand_seconds, 0);
  // ~4.4 h of spot at $0.30/h.
  EXPECT_NEAR(e.predicted_cost.to_double(), 0.30 * 4.36, 0.15);
}

TEST(Estimator, NeverUpZoneIsAllOnDemand) {
  const ZoneTraceSet traces =
      testing::single_zone(constant_series(2.0, 48));
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  const PermutationEstimate e = estimate_permutation(
      hist, 0, {0}, PolicyKind::kPeriodic, basic_inputs());
  EXPECT_DOUBLE_EQ(e.progress_rate, 0.0);
  EXPECT_GT(e.on_demand_seconds, 4 * kHour);
  // >= 5 started on-demand hours at $2.40.
  EXPECT_GE(e.predicted_cost, Money::dollars(12.0));
}

TEST(Estimator, ThirtyMinuteSpellsDefeatHourlyCheckpoints) {
  // Up-spells shorter than the Periodic checkpoint interval commit
  // nothing: the estimator must predict a zero progress rate.
  const ZoneTraceSet traces = testing::single_zone(step_series(
      {{0.3, 6}, {2.0, 6}, {0.3, 6}, {2.0, 6}, {0.3, 6}, {2.0, 6}}));
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  const PermutationEstimate e = estimate_permutation(
      hist, 0, {0}, PolicyKind::kPeriodic, basic_inputs());
  EXPECT_DOUBLE_EQ(e.progress_rate, 0.0);
  EXPECT_GT(e.on_demand_seconds, 0);
}

TEST(Estimator, FlakyZoneSplitsBetweenSpotAndOnDemand) {
  // Two-hour up-spells: Periodic banks progress but availability (2/3)
  // cannot finish 4 h of compute in the 6 h budget alone.
  const ZoneTraceSet traces = testing::single_zone(step_series(
      {{0.3, 24}, {2.0, 12}, {0.3, 24}, {2.0, 12}, {0.3, 24}, {2.0, 12}}));
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  const PermutationEstimate e = estimate_permutation(
      hist, 0, {0}, PolicyKind::kPeriodic, basic_inputs());
  EXPECT_GT(e.progress_rate, 0.1);
  EXPECT_LT(e.progress_rate, 0.75);
  EXPECT_GT(e.spot_seconds, 0);
  EXPECT_GT(e.on_demand_seconds, 0);
}

TEST(Estimator, RedundancyRaisesRateAndCost) {
  // Two anti-correlated zones: together ~always up, individually ~half.
  const ZoneTraceSet traces = testing::zones({
      step_series({{0.3, 6}, {2.0, 6}, {0.3, 6}, {2.0, 6}}),
      step_series({{2.0, 6}, {0.3, 6}, {2.0, 6}, {0.3, 6}}),
  });
  const HistoryStats hist(traces, 0, traces.end(), {Money::cents(81)});
  const auto in = basic_inputs();
  const auto single =
      estimate_permutation(hist, 0, {0}, PolicyKind::kPeriodic, in);
  const auto both =
      estimate_permutation(hist, 0, {0, 1}, PolicyKind::kPeriodic, in);
  EXPECT_GT(both.progress_rate, single.progress_rate);
  EXPECT_GT(both.cost_rate, single.cost_rate);
}

TEST(Estimator, CurrentPriceInflatesFirstHour) {
  const ZoneTraceSet traces =
      testing::single_zone(constant_series(0.30, 48));
  const HistoryStats hist(traces, 0, traces.end(), {Money::dollars(2.40)});
  EstimatorInputs in = basic_inputs();
  const auto cheap_now =
      estimate_permutation(hist, 0, {0}, PolicyKind::kPeriodic, in);
  in.current_prices = {2.0};  // the zone just turned expensive
  const auto pricey_now =
      estimate_permutation(hist, 0, {0}, PolicyKind::kPeriodic, in);
  EXPECT_GT(pricey_now.predicted_cost, cheap_now.predicted_cost);
}

TEST(Estimator, EvaluatesAllPermutationsSorted) {
  const ZoneTraceSet traces = testing::zones({
      constant_series(0.30, 48),
      constant_series(0.40, 48),
      constant_series(0.50, 48),
  });
  const HistoryStats hist(traces, 0, traces.end(),
                          {Money::cents(27), Money::cents(81)});
  const auto ranked = evaluate_permutations(
      hist, 3, {PolicyKind::kPeriodic, PolicyKind::kMarkovDaly},
      basic_inputs());
  // 2 bids x 7 subsets x 2 policies.
  EXPECT_EQ(ranked.size(), 28u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].predicted_cost, ranked[i].predicted_cost);
  // Cheapest: single zone 0 (always up, cheapest) at some bid.
  EXPECT_EQ(ranked.front().zones, (std::vector<std::size_t>{0}));
  EXPECT_FALSE(ranked.front().str().empty());
}

TEST(Estimator, PaperBidGrid) {
  const std::vector<Money> grid = paper_bid_grid();
  ASSERT_EQ(grid.size(), 15u);
  EXPECT_EQ(grid.front(), Money::cents(27));
  EXPECT_EQ(grid.back(), Money::dollars(3.07));
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_EQ(grid[i] - grid[i - 1], Money::cents(20));
}

// --- AdaptiveStrategy ------------------------------------------------------------------

TEST(Adaptive, PicksCheapAlwaysUpZone) {
  // Zone 0 cheap and stable, zones 1-2 expensive: Adaptive must start on
  // zone 0 alone and ride it to completion with no on-demand.
  const ZoneTraceSet traces = testing::zones({
      constant_series(0.30, 60 * 12),
      constant_series(1.80, 60 * 12),
      constant_series(1.90, 60 * 12),
  });
  const SpotMarket market = make_market(traces);
  const Experiment e = small_experiment(4.0, 0.5, 300, /*start=*/4 * kHour);
  AdaptiveStrategy strategy;
  Engine engine(market, e, strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.on_demand_cost, Money());
  // ~5 started hours at $0.30 (no reason to pay more).
  EXPECT_LE(r.total_cost, Money::dollars(1.80));
  ASSERT_TRUE(strategy.last_choice().has_value());
  EXPECT_EQ(strategy.last_choice()->zones.size(), 1u);
}

TEST(Adaptive, AbandonsZoneThatTurnsExpensive) {
  // Zone 0 cheap in history but dies right at the start; zone 1 steady.
  // Adaptive must end up doing most work on zone 1, not on-demand.
  std::vector<PriceSeries> series;
  series.push_back(step_series({{0.30, 4 * 12 + 6}, {2.2, 10 * 12},
                                {0.31, 46 * 12 - 6}}));
  series.push_back(constant_series(0.45, 60 * 12));
  const SpotMarket market = make_market(testing::zones(std::move(series)));
  const Experiment e = small_experiment(4.0, 0.5, 300, /*start=*/4 * kHour);
  AdaptiveStrategy strategy;
  Engine engine(market, e, strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  // The run must not collapse to on-demand: zone 1 was always available.
  EXPECT_LT(r.on_demand_cost, Money::dollars(5.0));
  EXPECT_LE(r.total_cost, Money::dollars(8.0));
}

TEST(Adaptive, BoundedEvenWhenEveryZoneIsHostile) {
  // Adversarial market: every zone priced ABOVE the on-demand rate.
  // Adaptive may legally bid above them (its grid tops at $3.07), so the
  // paper's empirical "never 20% above on-demand" does not apply to this
  // pathological market — but the deadline must hold and the cost must
  // stay within the slack-bounded ceiling (spot hours at ~$2.7 are at
  // most ~12% dearer than on-demand ones).
  const SpotMarket market = make_market(testing::zones({
      constant_series(2.5, 60 * 12),
      constant_series(2.6, 60 * 12),
      constant_series(2.7, 60 * 12),
  }));
  const Experiment e = small_experiment(4.0, 0.25, 300, /*start=*/4 * kHour);
  AdaptiveStrategy strategy;
  Engine engine(market, e, strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  EXPECT_LE(r.total_cost, Money::dollars(2.7 * 6));  // deadline-hours cap
}

TEST(Adaptive, RejectsInvalidCandidatePolicies) {
  AdaptiveStrategy::Options options;
  options.candidate_policies = {PolicyKind::kRisingEdge};
  EXPECT_THROW(AdaptiveStrategy{options}, CheckFailure);
}

TEST(Adaptive, ValidatesOptions) {
  AdaptiveStrategy::Options options;
  options.bid_grid.clear();
  EXPECT_THROW(AdaptiveStrategy{options}, CheckFailure);
}

}  // namespace
}  // namespace redspot
