// Unit tests for the market substrate: instance catalog, the billing
// ledger's EC2 charging rules, the queue-delay model and the SpotMarket
// facade.
#include <gtest/gtest.h>

#include <limits>

#include "common/check.hpp"
#include "market/billing.hpp"
#include "market/instance_type.hpp"
#include "market/queue_delay.hpp"
#include "market/spot_market.hpp"
#include "stats/descriptive.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::step_series;

// --- Instance types -------------------------------------------------------------

TEST(InstanceType, Cc2IsThePaperInstance) {
  const InstanceType& cc2 = cc2_instance();
  EXPECT_EQ(cc2.api_name, "cc2.8xlarge");
  EXPECT_EQ(cc2.on_demand_rate, Money::dollars(2.40));
}

TEST(InstanceType, CatalogLookup) {
  EXPECT_EQ(find_instance_type("cc2.8xlarge").on_demand_rate,
            Money::dollars(2.40));
  EXPECT_THROW(find_instance_type("m5.large"), CheckFailure);
  EXPECT_GE(instance_catalog().size(), 3u);
}

// --- BillingLedger ----------------------------------------------------------------

TEST(Billing, CompletedHourChargedAtCycleStartRate) {
  BillingLedger ledger;
  ledger.spot_started(0, 1000, Money::dollars(0.30));
  EXPECT_EQ(ledger.cycle_end(0), 1000 + kHour);
  // Price moved to 0.50 by the boundary; the completed hour still costs
  // the rate locked at cycle start.
  ledger.cycle_boundary(0, Money::dollars(0.50));
  EXPECT_EQ(ledger.total(), Money::dollars(0.30));
  // The new cycle locks the new rate.
  ledger.cycle_boundary(0, Money::dollars(0.30));
  EXPECT_EQ(ledger.total(), Money::dollars(0.80));
}

TEST(Billing, OutOfBidPartialHourIsFree) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  ledger.spot_terminated(0, 1800, TerminationCause::kOutOfBid);
  EXPECT_EQ(ledger.total(), Money());
  EXPECT_FALSE(ledger.spot_running(0));
}

TEST(Billing, UserTerminationPaysFullHour) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  ledger.spot_terminated(0, 1, TerminationCause::kUser);
  EXPECT_EQ(ledger.total(), Money::dollars(0.30));
  ASSERT_EQ(ledger.items().size(), 1u);
  EXPECT_EQ(ledger.items()[0].kind, LineItem::Kind::kSpotUserPartial);
}

TEST(Billing, StopAtBoundaryChargesExactlyCompletedCycle) {
  BillingLedger ledger;
  ledger.spot_started(0, 100, Money::dollars(0.81));
  ledger.spot_stopped_at_boundary(0);
  EXPECT_EQ(ledger.total(), Money::dollars(0.81));
  EXPECT_FALSE(ledger.spot_running(0));
}

TEST(Billing, MultipleZonesAreIndependent) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  ledger.spot_started(2, 500, Money::dollars(0.50));
  EXPECT_TRUE(ledger.spot_running(0));
  EXPECT_FALSE(ledger.spot_running(1));
  EXPECT_TRUE(ledger.spot_running(2));
  ledger.spot_terminated(0, 100, TerminationCause::kOutOfBid);
  ledger.cycle_boundary(2, Money::dollars(0.60));
  EXPECT_EQ(ledger.total(), Money::dollars(0.50));
}

TEST(Billing, RestartAfterTermination) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  ledger.spot_terminated(0, 600, TerminationCause::kOutOfBid);
  ledger.spot_started(0, 2000, Money::dollars(0.40));
  ledger.cycle_boundary(0, Money::dollars(0.40));
  EXPECT_EQ(ledger.total(), Money::dollars(0.40));
}

TEST(Billing, RejectsDoubleStartAndForeignCycles) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  EXPECT_THROW(ledger.spot_started(0, 10, Money::dollars(0.30)),
               CheckFailure);
  EXPECT_THROW(ledger.cycle_end(1), CheckFailure);
  EXPECT_THROW(ledger.spot_terminated(1, 10, TerminationCause::kUser),
               CheckFailure);
}

TEST(Billing, RejectsTerminationOutsideCycle) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  EXPECT_THROW(
      ledger.spot_terminated(0, kHour + 1, TerminationCause::kOutOfBid),
      CheckFailure);
}

TEST(Billing, OnDemandChargesStartedHours) {
  BillingLedger ledger;
  ledger.on_demand_usage(0, kHour, Money::dollars(2.40));
  EXPECT_EQ(ledger.total(), Money::dollars(2.40));
  ledger.on_demand_usage(0, kHour + 1, Money::dollars(2.40));
  EXPECT_EQ(ledger.on_demand_total(), Money::dollars(2.40 + 4.80));
  EXPECT_EQ(ledger.spot_total(), Money());
  EXPECT_THROW(ledger.on_demand_usage(0, 0, Money::dollars(2.40)),
               CheckFailure);
}

TEST(Billing, SpotAndOnDemandTotalsSeparate) {
  BillingLedger ledger;
  ledger.spot_started(0, 0, Money::dollars(0.30));
  ledger.cycle_boundary(0, Money::dollars(0.30));
  ledger.on_demand_usage(7200, 2 * kHour, Money::dollars(2.40));
  EXPECT_EQ(ledger.spot_total(), Money::dollars(0.30));
  EXPECT_EQ(ledger.on_demand_total(), Money::dollars(4.80));
  EXPECT_EQ(ledger.total(), Money::dollars(5.10));
}

TEST(Billing, TwentyHourOnDemandIsFortyEightDollars) {
  // The paper's reference: 20 h at $2.40 = $48.00.
  BillingLedger ledger;
  ledger.on_demand_usage(0, 20 * kHour, Money::dollars(2.40));
  EXPECT_EQ(ledger.total(), Money::dollars(48.00));
}

TEST(Billing, LineItemKindsToString) {
  EXPECT_EQ(to_string(LineItem::Kind::kSpotHour), "spot-hour");
  EXPECT_EQ(to_string(LineItem::Kind::kOnDemandHour), "on-demand-hour");
}

// --- Queue delay -------------------------------------------------------------------

TEST(QueueDelay, FixedModeIsExact) {
  const QueueDelayModel model(QueueDelayParams::fixed(300));
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(model.sample(rng), 300);
}

TEST(QueueDelay, SamplesWithinPaperRange) {
  const QueueDelayModel model(QueueDelayParams::paper_calibrated());
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Duration d = model.sample(rng);
    EXPECT_GE(d, 143);
    EXPECT_LE(d, 880);
  }
}

TEST(QueueDelay, MeanMatchesPaperMeasurement) {
  const QueueDelayModel model(QueueDelayParams::paper_calibrated());
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.add(static_cast<double>(model.sample(rng)));
  EXPECT_NEAR(stats.mean(), 299.6, 20.0);
}

TEST(QueueDelay, RejectsInvalidParams) {
  QueueDelayParams bad;
  bad.min_delay = 100;
  bad.max_delay = 50;
  EXPECT_THROW(QueueDelayModel{bad}, CheckFailure);
  EXPECT_THROW(bad.validate(), CheckFailure);
}

TEST(QueueDelay, ValidateAcceptsFixedAndPaperParams) {
  // fixed() deliberately sets sigma = 0 (degenerate distribution); the
  // validator must accept it, including the zero-delay case.
  EXPECT_NO_THROW(QueueDelayParams::fixed(300).validate());
  EXPECT_NO_THROW(QueueDelayParams::fixed(0).validate());
  EXPECT_NO_THROW(QueueDelayParams::paper_calibrated().validate());
  const QueueDelayParams p = QueueDelayParams::fixed(300);
  EXPECT_EQ(p.sigma, 0.0);
  EXPECT_EQ(p.min_delay, 300);
  EXPECT_EQ(p.max_delay, 300);
}

TEST(QueueDelay, ValidateRejectsEachBadField) {
  {
    QueueDelayParams p;
    p.sigma = -0.1;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    QueueDelayParams p;
    p.shift_seconds = -1.0;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    QueueDelayParams p;
    p.min_delay = -5;
    EXPECT_THROW(p.validate(), CheckFailure);
  }
  {
    QueueDelayParams p;
    p.mu = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(p.validate(), CheckFailure);
  }
}

// --- SpotMarket -----------------------------------------------------------------------

TEST(SpotMarket, PriceAndUpQueries) {
  const SpotMarket market =
      testing::make_market(testing::single_zone(step_series(
          {{0.30, 2}, {1.0, 2}})));
  EXPECT_EQ(market.spot_price(0, 0), Money::dollars(0.30));
  EXPECT_TRUE(market.zone_up(0, 0, Money::cents(81)));
  EXPECT_FALSE(market.zone_up(0, 2 * kPriceStep, Money::cents(81)));
  EXPECT_TRUE(market.zone_up(0, 0, Money::dollars(0.30)));  // B == S is up
  EXPECT_EQ(market.on_demand_rate(), Money::dollars(2.40));
}

TEST(SpotMarket, NextPriceChangeAcrossZones) {
  const SpotMarket market = testing::make_market(testing::zones({
      step_series({{0.3, 4}, {0.4, 2}}),
      step_series({{0.5, 2}, {0.6, 4}}),
  }));
  EXPECT_EQ(market.next_price_change(0), 2 * kPriceStep);
  EXPECT_EQ(market.next_price_change(2 * kPriceStep), 4 * kPriceStep);
  EXPECT_EQ(market.next_price_change(4 * kPriceStep), kNever);
}

TEST(SpotMarket, QueueDelaySampling) {
  const SpotMarket market = testing::make_market(
      testing::single_zone(constant_series(0.3, 4)), /*queue_delay=*/250);
  Rng rng(4);
  EXPECT_EQ(market.sample_queue_delay(rng), 250);
}

}  // namespace
}  // namespace redspot
