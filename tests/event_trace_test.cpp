// Golden event-trace test: one Fig-4 scenario (the paper's C = 20 h run
// on high-volatility synthetic traces, Tl = 15%, t_c = 300 s, bid $0.81,
// N = 2) per checkpointing policy, recorded through EventTraceRecorder and
// compared line-by-line against a committed golden file. This pins the
// whole observer surface — event dispatch order, zone transitions, billing
// charges, checkpoint settlements and the finish line — not just the run's
// final scalars.
//
// Regenerate (only when a deliberate behaviour change is intended) with:
//   REDSPOT_TRACE_REGEN=/path/to/golden-dir ./event_trace_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "core/events/trace_recorder.hpp"
#include "core/strategy.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

#ifndef REDSPOT_GOLDEN_DIR
#define REDSPOT_GOLDEN_DIR "."
#endif

const PolicyKind kPolicies[] = {
    PolicyKind::kPeriodic,
    PolicyKind::kMarkovDaly,
    PolicyKind::kRisingEdge,
    PolicyKind::kThreshold,
};

std::string trace_of(PolicyKind kind) {
  const SimTime start = 2 * kDay;  // history span precedes the run
  const Experiment experiment =
      Experiment::paper(start, /*slack_fraction=*/0.15,
                        /*checkpoint_cost=*/300, /*seed=*/7);
  SyntheticTraceSpec spec = paper_trace_spec(/*seed=*/1001);
  spec = trimmed_spec(std::move(spec), experiment.deadline_time() + kHour);
  const SpotMarket market(
      generate_traces(spec), cc2_instance(),
      QueueDelayModel(QueueDelayParams::paper_calibrated()));

  FixedStrategy strategy(Money::cents(81), {0, 1}, make_policy(kind));
  Engine engine(market, experiment, strategy, {});
  EventTraceRecorder trace;
  engine.add_observer(&trace);
  engine.run();
  return trace.str();
}

std::string golden_path(PolicyKind kind, const char* dir) {
  return std::string(dir) + "/event_trace_" + to_string(kind) + ".txt";
}

TEST(EventTrace, MatchesGoldenPerPolicy) {
  if (const char* regen = std::getenv("REDSPOT_TRACE_REGEN")) {
    for (const PolicyKind kind : kPolicies) {
      const std::string path = golden_path(kind, regen);
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << trace_of(kind);
    }
    GTEST_SKIP() << "golden traces regenerated";
  }

  for (const PolicyKind kind : kPolicies) {
    const std::string path = golden_path(kind, REDSPOT_GOLDEN_DIR);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate with REDSPOT_TRACE_REGEN)";
    std::ostringstream want;
    want << in.rdbuf();
    const std::string got = trace_of(kind);
    if (got == want.str()) continue;

    // Point at the first diverging line: a full-trace dump is unreadable.
    std::istringstream got_s(got), want_s(want.str());
    std::string got_line, want_line;
    std::size_t line_no = 0;
    while (true) {
      ++line_no;
      const bool g = static_cast<bool>(std::getline(got_s, got_line));
      const bool w = static_cast<bool>(std::getline(want_s, want_line));
      if (!g && !w) break;
      if (!g) got_line = "<end of trace>";
      if (!w) want_line = "<end of golden>";
      ASSERT_EQ(got_line, want_line)
          << to_string(kind) << " trace diverges at line " << line_no;
      if (!g || !w) break;
    }
    FAIL() << to_string(kind) << " trace differs from " << path;
  }
}

}  // namespace
}  // namespace redspot
