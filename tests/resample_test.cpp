// Unit tests for the real-trace import path (event resampling) and the
// Appendix-A termination-notice engine extension.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/engine.hpp"
#include "test_util.hpp"
#include "trace/resample.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

using testing::make_market;
using testing::run_fixed;
using testing::single_zone;
using testing::small_experiment;
using testing::step_series;

// --- resample_events -----------------------------------------------------------

TEST(Resample, HoldsLastEventValue) {
  const std::vector<PriceEvent> events = {
      {0, Money::dollars(0.30)},
      {700, Money::dollars(0.50)},   // mid-step change
      {1500, Money::dollars(0.40)},
  };
  const PriceSeries s = resample_events(events, 0, 2100, 300);
  EXPECT_EQ(s.at(0), Money::dollars(0.30));
  EXPECT_EQ(s.at(600), Money::dollars(0.30));   // change at 700 not yet seen
  EXPECT_EQ(s.at(900), Money::dollars(0.50));
  EXPECT_EQ(s.at(1500), Money::dollars(0.40));
  EXPECT_EQ(s.at(2099), Money::dollars(0.40));
}

TEST(Resample, BackfillsBeforeFirstEvent) {
  const std::vector<PriceEvent> events = {{900, Money::dollars(0.42)}};
  const PriceSeries s = resample_events(events, 0, 1800, 300);
  EXPECT_EQ(s.at(0), Money::dollars(0.42));
  EXPECT_EQ(s.at(1200), Money::dollars(0.42));
}

TEST(Resample, SortsUnorderedEvents) {
  const std::vector<PriceEvent> events = {
      {600, Money::dollars(0.50)},
      {0, Money::dollars(0.30)},
  };
  const PriceSeries s = resample_events(events, 0, 1200, 300);
  EXPECT_EQ(s.at(0), Money::dollars(0.30));
  EXPECT_EQ(s.at(600), Money::dollars(0.50));
}

TEST(Resample, AlignsUnalignedStart) {
  const std::vector<PriceEvent> events = {{0, Money::dollars(0.30)}};
  const PriceSeries s = resample_events(events, 450, 1500, 300);
  EXPECT_EQ(s.start() % 300, 0);
  EXPECT_LE(s.start(), 450);
  EXPECT_GE(s.end(), 1500);
}

TEST(Resample, Validates) {
  EXPECT_THROW(resample_events({}, 0, 100, 300), CheckFailure);
  EXPECT_THROW(
      resample_events({{0, Money::dollars(1)}}, 100, 100, 300),
      CheckFailure);
}

// --- read_event_csv -------------------------------------------------------------

TEST(EventCsv, ParsesMultiZoneEvents) {
  std::istringstream in(
      "time,zone,price\n"
      "0,us-east-1a,0.27\n"
      "0,us-east-1b,0.30\n"
      "650,us-east-1a,0.95\n"
      "1500,us-east-1b,0.28\n");
  const ZoneTraceSet traces = read_event_csv(in);
  ASSERT_EQ(traces.num_zones(), 2u);
  EXPECT_EQ(traces.zone_name(0), "us-east-1a");
  EXPECT_EQ(traces.price(0, 0), Money::dollars(0.27));
  EXPECT_EQ(traces.price(0, 900), Money::dollars(0.95));
  EXPECT_EQ(traces.price(1, 0), Money::dollars(0.30));
  EXPECT_EQ(traces.price(1, 1500), Money::dollars(0.28));
  // Common aligned grid.
  EXPECT_EQ(traces.start(), 0);
  EXPECT_GE(traces.end(), 1500);
}

TEST(EventCsv, RejectsMalformed) {
  {
    std::istringstream in("wrong,header,here\n");
    EXPECT_THROW(read_event_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,zone,price\n");
    EXPECT_THROW(read_event_csv(in), std::runtime_error);  // no events
  }
  {
    std::istringstream in("time,zone,price\nabc,z,0.3\n");
    EXPECT_THROW(read_event_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,zone,price\n0,z,xyz\n");
    EXPECT_THROW(read_event_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("time,zone,price\n0,,0.3\n");
    EXPECT_THROW(read_event_csv(in), std::runtime_error);
  }
}

TEST(EventCsv, ResampledTraceDrivesTheEngine) {
  // End-to-end: import events, build a market, run an experiment.
  std::ostringstream events;
  events << "time,zone,price\n0,imported,0.30\n";
  events << 6 * kHour << ",imported,2.00\n";
  events << 7 * kHour << ",imported,0.30\n";
  std::istringstream in(events.str());
  ZoneTraceSet imported = read_event_csv(in);
  // Extend coverage: resampling only spans observed events; pad by
  // windowing the engine experiment inside it.
  const SpotMarket market = make_market(imported.window(0, 7 * kHour));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  const RunResult r =
      run_fixed(market, e, PolicyKind::kPeriodic, Money::cents(81), {0});
  EXPECT_TRUE(r.met_deadline);
  EXPECT_GT(r.total_cost, Money());
}

// --- Termination notice (Appendix A) ----------------------------------------------

TEST(TerminationNotice, NoticeAtLeastTcSavesProgress) {
  // Zone dies after 30 min with no checkpoint taken. Without notice all
  // progress is lost; with a 300 s notice (== t_c) the emergency
  // checkpoint commits ~30 min of work.
  const auto trace = step_series({{0.30, 6}, {2.00, 6},
                                  {0.30, 40 * 12}});
  const Experiment e = small_experiment(2.0, 1.0, 300);

  const RunResult without = run_fixed(make_market(single_zone(trace)), e,
                                      PolicyKind::kMarkovDaly,
                                      Money::cents(81), {0});
  EngineOptions notice;
  notice.termination_notice = 300;
  const RunResult with = run_fixed(make_market(single_zone(trace)), e,
                                   PolicyKind::kMarkovDaly,
                                   Money::cents(81), {0}, notice);
  EXPECT_TRUE(without.met_deadline);
  EXPECT_TRUE(with.met_deadline);
  // Without the notice the outage commits nothing: the recovery starts
  // from scratch (a restart only counts when it loads a checkpoint).
  EXPECT_EQ(without.restarts, 0);
  // With it, the emergency checkpoint commits ~30 min and the recovery
  // loads it, finishing that much earlier.
  EXPECT_EQ(with.restarts, 1);
  EXPECT_GE(with.checkpoints_committed, 1);
  EXPECT_LT(with.finish_time, without.finish_time);
  EXPECT_NEAR(static_cast<double>(without.finish_time - with.finish_time),
              30.0 * kMinute, 10.0 * kMinute);
}

TEST(TerminationNotice, ShortNoticeCannotFitACheckpoint) {
  const auto trace = step_series({{0.30, 6}, {2.00, 6},
                                  {0.30, 40 * 12}});
  const Experiment e = small_experiment(2.0, 1.0, 300);
  const RunResult baseline = run_fixed(make_market(single_zone(trace)), e,
                                       PolicyKind::kMarkovDaly,
                                       Money::cents(81), {0});
  EngineOptions notice;
  notice.termination_notice = 120;  // < t_c: useless, as Appendix A argues
  const RunResult r = run_fixed(make_market(single_zone(trace)), e,
                                PolicyKind::kMarkovDaly, Money::cents(81),
                                {0}, notice);
  EXPECT_TRUE(r.met_deadline);
  // No emergency checkpoint fits, so the outage still loses everything:
  // recovery starts from scratch, same finish as the no-notice run.
  EXPECT_EQ(r.restarts, baseline.restarts);
  EXPECT_EQ(r.finish_time, baseline.finish_time);
}

TEST(TerminationNotice, DoomedPartialHourStaysFree) {
  // The notice does not change the billing rules: the cut hour is free.
  const auto trace = step_series({{0.30, 6}, {2.00, 6},
                                  {0.30, 40 * 12}});
  const Experiment e = small_experiment(1.0, 1.5, 300);
  EngineOptions notice;
  notice.termination_notice = 300;
  EngineOptions both = notice;
  both.record_line_items = true;
  const RunResult r = run_fixed(make_market(single_zone(trace)), e,
                                PolicyKind::kMarkovDaly, Money::cents(81),
                                {0}, both);
  EXPECT_TRUE(r.met_deadline);
  // The doomed hour's rate was locked at $0.30 before the spike and is
  // forfeited free on termination; no charge at the $2.00 spike rate can
  // ever appear.
  for (const LineItem& item : r.line_items)
    EXPECT_LE(item.amount, Money::dollars(0.30));
}

TEST(TerminationNotice, DeadlineStillGuaranteedUnderNotice) {
  const SpotMarket market(paper_traces(42), cc2_instance(),
                          QueueDelayModel());
  for (Duration notice : {Duration{120}, Duration{300}, Duration{900}}) {
    EngineOptions options;
    options.termination_notice = notice;
    FixedStrategy strategy(Money::cents(81), {0, 1, 2},
                           make_policy(PolicyKind::kMarkovDaly));
    const Experiment e = Experiment::paper(40 * kDay, 0.15, 300);
    Engine engine(market, e, strategy, options);
    const RunResult r = engine.run();
    EXPECT_TRUE(r.met_deadline) << "notice=" << notice;
  }
}

}  // namespace
}  // namespace redspot
