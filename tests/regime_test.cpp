// Market-regime contract suite (DESIGN.md §15): the regime catalog and
// its fingerprints, per-second billing boundaries around the 60 s
// minimum, refund-rule properties, the rebalance-warned zone lifecycle,
// the notice-aware deadline decision, the batching homogeneity gate, and
// the journaled head-to-head matrix.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/batch/batched_engine.hpp"
#include "core/deadline/deadline_monitor.hpp"
#include "core/engine.hpp"
#include "core/zone/zone_machine.hpp"
#include "core/zone/zone_state.hpp"
#include "exp/head_to_head.hpp"
#include "exp/scenario.hpp"
#include "journal/journal.hpp"
#include "market/billing.hpp"
#include "market/regime.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

namespace fs = std::filesystem;

/// Fresh path under the test temp dir (any stale file removed).
std::string tmp_path(const std::string& name) {
  const fs::path p = fs::path(testing::TempDir()) / ("redspot_" + name);
  fs::remove(p);
  return p.string();
}

// --- catalog -----------------------------------------------------------------------

TEST(RegimeCatalog, NamedRegimesRoundTripThroughLookup) {
  const std::vector<MarketRegime>& catalog = regime_catalog();
  ASSERT_GE(catalog.size(), 4u);
  EXPECT_EQ(catalog.front().name, "classic-2012");
  for (const MarketRegime& r : catalog) {
    EXPECT_EQ(&regime_by_name(r.name), &r);
  }
  EXPECT_THROW(regime_by_name("ec2-2042"), CheckFailure);
}

TEST(RegimeCatalog, DefaultConstructedRegimeIsClassic2012) {
  // The whole refactor hangs on this: a default EngineOptions must mean
  // the paper's market, bit for bit.
  EXPECT_EQ(MarketRegime{}, MarketRegime::classic_2012());
  EXPECT_EQ(MarketRegime::classic(), MarketRegime::classic_2012());
  const MarketRegime& classic = MarketRegime::classic();
  EXPECT_EQ(classic.billing.granularity, BillingGranularity::kHourly);
  EXPECT_EQ(classic.billing.refund, RefundRule::kProviderForfeitsCycle);
  EXPECT_EQ(classic.rebalance_notice, 0);
  EXPECT_TRUE(classic.types.empty());
}

TEST(RegimeCatalog, FingerprintsAreDistinctAndStable) {
  std::set<std::uint64_t> prints;
  for (const MarketRegime& r : regime_catalog())
    prints.insert(regime_fingerprint(r));
  EXPECT_EQ(prints.size(), regime_catalog().size());
  EXPECT_EQ(regime_fingerprint(MarketRegime{}),
            regime_fingerprint(MarketRegime::classic_2012()));
  // Every axis feeds the fingerprint (it keys journals and serve caches).
  MarketRegime tweaked = MarketRegime::per_second();
  tweaked.billing.minimum += 1;
  EXPECT_NE(regime_fingerprint(tweaked),
            regime_fingerprint(MarketRegime::per_second()));
}

// --- per-second billing ------------------------------------------------------------

BillingRules per_second_rules() { return MarketRegime::per_second().billing; }

TEST(PerSecondBilling, SixtySecondMinimumBoundary) {
  const Money rate = Money::cents(81);
  // T-1 / T / T+1 around the 60 s minimum: below it the minimum is owed,
  // at it exactly the minimum, past it the actual usage.
  const std::pair<Duration, Duration> cases[] = {{59, 60}, {60, 60}, {61, 61}};
  for (const auto& [stop, owed] : cases) {
    BillingLedger ledger;
    ledger.set_rules(per_second_rules());
    ledger.spot_started(0, 0, rate);
    ledger.spot_terminated(0, stop, TerminationCause::kUser);
    ASSERT_EQ(ledger.items().size(), 1u) << "stop at " << stop;
    EXPECT_EQ(ledger.items()[0].kind, LineItem::Kind::kSpotUsage);
    EXPECT_EQ(ledger.total(), prorate_hourly(rate, owed)) << "stop at " << stop;
  }
}

TEST(PerSecondBilling, MinimumIsChargedAtMostOncePerInstance) {
  const Money rate = Money::cents(81);
  BillingLedger ledger;
  ledger.set_rules(per_second_rules());
  ledger.spot_started(0, 0, rate);
  ledger.cycle_boundary(0, rate);  // first full hour satisfies the minimum
  ledger.spot_terminated(0, kHour + 30, TerminationCause::kUser);
  // 30 s into the second cycle bills 30 s, not another minute.
  EXPECT_EQ(ledger.total(), rate + prorate_hourly(rate, 30));

  // Zero usage past the minimum charges nothing at all.
  BillingLedger zero;
  zero.set_rules(per_second_rules());
  zero.spot_started(1, 0, rate);
  zero.cycle_boundary(1, rate);
  zero.spot_terminated(1, kHour, TerminationCause::kUser);
  EXPECT_EQ(zero.total(), rate);
  EXPECT_EQ(zero.items().size(), 1u);
}

TEST(PerSecondBilling, UserStopChargeIsMonotoneInUsage) {
  const Money rate = Money::cents(81);
  Money prev;
  for (const Duration stop : {1, 59, 60, 61, 600, 1800, 3599, 3600}) {
    BillingLedger ledger;
    ledger.set_rules(per_second_rules());
    ledger.spot_started(0, 0, rate);
    ledger.spot_terminated(0, stop, TerminationCause::kUser);
    EXPECT_GE(ledger.total(), prev) << "stop at " << stop;
    EXPECT_LE(ledger.total(), rate) << "never more than the locked hour";
    prev = ledger.total();
  }
}

TEST(PerSecondBilling, OnDemandUsageProratesWithMinimum) {
  const Money rate = Money::dollars(2.40);
  BillingLedger ledger;
  ledger.set_rules(per_second_rules());
  ledger.on_demand_usage(0, 45, rate);  // under the minimum
  ASSERT_EQ(ledger.items().size(), 1u);
  EXPECT_EQ(ledger.items()[0].kind, LineItem::Kind::kOnDemandUsage);
  EXPECT_EQ(ledger.total(), prorate_hourly(rate, 60));
  ledger.on_demand_usage(kHour, 3700, rate);  // one prorated item, not 2 hours
  ASSERT_EQ(ledger.items().size(), 2u);
  EXPECT_EQ(ledger.items()[1].amount, prorate_hourly(rate, 3700));
}

// --- refund rules ------------------------------------------------------------------

/// Total billed for one instance started at 0 and provider-killed at `t`.
Money provider_kill_total(BillingRules rules, SimTime t) {
  BillingLedger ledger;
  ledger.set_rules(rules);
  ledger.spot_started(0, 0, Money::cents(81));
  ledger.spot_terminated(0, t, TerminationCause::kOutOfBid);
  return ledger.total();
}

/// Same instance, user-stopped at `t`.
Money user_stop_total(BillingRules rules, SimTime t) {
  BillingLedger ledger;
  ledger.set_rules(rules);
  ledger.spot_started(0, 0, Money::cents(81));
  ledger.spot_terminated(0, t, TerminationCause::kUser);
  return ledger.total();
}

TEST(RefundRules, ClassicForfeitsTheInterruptedPartialCycle) {
  for (const Duration t : {1, 60, 1800, 3599}) {
    EXPECT_EQ(provider_kill_total(BillingRules{}, t), Money()) << t;
  }
}

TEST(RefundRules, ChargesUsageMakesInterruptionCostAUserStop) {
  // Property: under kProviderChargesUsage a provider kill bills exactly
  // like a user stop at the same instant, whatever the granularity.
  for (const Duration t : {1, 59, 60, 61, 1800, 3599}) {
    BillingRules hourly;
    hourly.refund = RefundRule::kProviderChargesUsage;
    EXPECT_EQ(provider_kill_total(hourly, t), user_stop_total(hourly, t)) << t;
    EXPECT_EQ(provider_kill_total(per_second_rules(), t),
              user_stop_total(per_second_rules(), t))
        << t;
  }
}

TEST(RefundRules, FreeFirstHourRefundsOnlyYoungInstances) {
  BillingRules rules;
  rules.refund = RefundRule::kFreeFirstHourOnInterrupt;
  // Killed inside the first hour: free, as in the 2017-2021 hybrid.
  EXPECT_EQ(provider_kill_total(rules, 3599), Money());
  // Exactly one hour old: the refund window has closed.
  EXPECT_EQ(provider_kill_total(rules, kHour), Money::cents(81));
  // A second-cycle kill bills the partial (instance age > 1 h) on top of
  // the completed first hour.
  BillingLedger ledger;
  ledger.set_rules(rules);
  ledger.spot_started(0, 0, Money::cents(81));
  ledger.cycle_boundary(0, Money::cents(81));
  ledger.spot_terminated(0, kHour + 10, TerminationCause::kOutOfBid);
  EXPECT_EQ(ledger.total(), Money::cents(81) * 2);
}

// --- rebalance-warned lifecycle ----------------------------------------------------

struct NullSink final : ZoneTransitionSink {
  void on_zone_transition(std::size_t, ZoneState, ZoneState) override {}
};

/// Drives a fresh machine to kRunning at t = 0.
ZoneMachine running_machine(NullSink& sink) {
  ZoneMachine m(0, &sink);
  m.wake();
  m.request();
  m.begin_compute(0, 0);
  return m;
}

TEST(RebalanceWarned, WarningKeepsTheZoneComputing) {
  NullSink sink;
  ZoneMachine m = running_machine(sink);
  m.warn_rebalance();
  EXPECT_EQ(m.state(), ZoneState::kRebalanceWarned);
  EXPECT_TRUE(m.rebalance_warned());
  EXPECT_TRUE(m.running());
  EXPECT_TRUE(m.computing());
  // Progress accrues through the notice window — that is the point of
  // the warning: free compute until the kill lands.
  EXPECT_EQ(m.progress(100), 100);
  m.terminate();
  EXPECT_EQ(m.state(), ZoneState::kDown);
  EXPECT_FALSE(m.rebalance_warned());  // cleared with the instance
}

TEST(RebalanceWarned, WarnedZoneCanStillCheckpointAndStaysWarned) {
  NullSink sink;
  ZoneMachine m = running_machine(sink);
  m.warn_rebalance();
  m.begin_checkpoint(100);  // the emergency write
  EXPECT_EQ(m.state(), ZoneState::kCheckpointing);
  EXPECT_TRUE(m.rebalance_warned());
  // The warning never rescinds: compute resumes into kRebalanceWarned.
  m.begin_compute(200, 100);
  EXPECT_EQ(m.state(), ZoneState::kRebalanceWarned);
}

TEST(RebalanceWarned, WarningDuringAWriteIsFlagOnly) {
  NullSink sink;
  ZoneMachine m = running_machine(sink);
  m.begin_checkpoint(50);
  m.warn_rebalance();
  EXPECT_EQ(m.state(), ZoneState::kCheckpointing);  // the write continues
  EXPECT_TRUE(m.rebalance_warned());
  m.begin_compute(150, 50);
  EXPECT_EQ(m.state(), ZoneState::kRebalanceWarned);
}

TEST(RebalanceWarned, WarningRequiresARunningInstance) {
  NullSink sink;
  ZoneMachine m(0, &sink);
  EXPECT_THROW(m.warn_rebalance(), CheckFailure);  // kDown
  m.wake();
  EXPECT_THROW(m.warn_rebalance(), CheckFailure);  // kWaiting
}

// --- notice-aware deadline decision ------------------------------------------------

TEST(DeadlineNotice, NoticeLeadChangesTheForcedCheckpointOdds) {
  DeadlineParams p;
  p.total_compute = hours(4);
  p.checkpoint_cost = 300;
  p.restart_cost = 300;
  p.deadline = hours(6);
  const Duration committed = 1000;
  const SimTime due = deadline_switch_time(p, committed);

  // Classic market: a forced write must buy more margin than its t_c.
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 300),
            DeadlineAction::kSwitchToOnDemand);
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 301),
            DeadlineAction::kForceCheckpoint);

  // A notice shorter than t_c leaves the gamble's odds unchanged...
  p.notice_lead = 120;
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 300),
            DeadlineAction::kSwitchToOnDemand);
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 301),
            DeadlineAction::kForceCheckpoint);
  // ...but an announced kill means the write may not commit: never gamble.
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 5000,
                              /*leader_doomed=*/true),
            DeadlineAction::kSwitchToOnDemand);

  // A notice covering t_c guarantees an unannounced leader's write lands:
  // any positive gain is worth banking.
  p.notice_lead = 300;
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 1),
            DeadlineAction::kForceCheckpoint);
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed),
            DeadlineAction::kSwitchToOnDemand);  // nothing to bank
  EXPECT_EQ(decide_at_trigger(p, committed, due, false, committed + 1,
                              /*leader_doomed=*/true),
            DeadlineAction::kSwitchToOnDemand);
  // An in-flight write always wins the trigger.
  EXPECT_EQ(decide_at_trigger(p, committed, due, true, committed + 1),
            DeadlineAction::kWait);
}

// --- batching gate -----------------------------------------------------------------

TEST(RegimeBatching, OnlyHomogeneousRegimeLanesBatch) {
  EngineOptions a;
  EngineOptions b;
  EXPECT_TRUE(batch::BatchedSweepEngine::can_batch(a, b));
  b.regime = MarketRegime::per_second();
  EXPECT_FALSE(batch::BatchedSweepEngine::can_batch(a, b));
  a.regime = MarketRegime::per_second();
  EXPECT_TRUE(batch::BatchedSweepEngine::can_batch(a, b));
  a.faults.ckpt_write_failure_rate = 0.1;  // faults still veto batching
  EXPECT_FALSE(batch::BatchedSweepEngine::can_batch(a, b));
}

// --- head-to-head matrix -----------------------------------------------------------

TEST(HeadToHead, MatrixIsJournaledAndResumable) {
  const SpotMarket market(paper_traces(7), cc2_instance(), QueueDelayModel());
  HeadToHeadOptions options;
  options.scenario = Scenario{VolatilityWindow::kHigh, 0.15, 300, 2};
  options.regimes = {MarketRegime::classic_2012(), MarketRegime::per_second(),
                     MarketRegime::rebalance()};
  const std::string path = tmp_path("h2h.journal");

  HeadToHeadResult first;
  {
    RunJournal journal(path);
    options.journal = &journal;
    first = run_head_to_head(market, options);
  }
  // 9 roster rows per regime; >= 8 policies x >= 3 regimes is the
  // acceptance floor of the flagship table.
  ASSERT_EQ(first.cells.size(), 27u);
  std::set<std::string> policies;
  std::set<std::string> regimes;
  for (const HeadToHeadCell& c : first.cells) {
    policies.insert(c.policy);
    regimes.insert(c.regime);
    EXPECT_EQ(c.n, 2u);
    EXPECT_LE(c.cost_lo, c.mean_cost);
    EXPECT_GE(c.cost_hi, c.mean_cost);
    EXPECT_GE(c.miss_rate, c.miss_lo);
    EXPECT_LE(c.miss_rate, c.miss_hi);
  }
  EXPECT_EQ(policies.size(), 9u);
  EXPECT_EQ(regimes.size(), 3u);
  EXPECT_GT(first.chunks_recomputed, 0u);  // cold journal: real work

  // Re-running against the surviving journal replays every chunk and
  // reproduces the table bit for bit.
  HeadToHeadResult second;
  {
    RunJournal journal(path);
    options.journal = &journal;
    second = run_head_to_head(market, options);
  }
  EXPECT_EQ(second.chunks_recomputed, 0u);
  EXPECT_EQ(second.chunks_replayed,
            first.chunks_replayed + first.chunks_recomputed);
  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    const HeadToHeadCell& x = first.cells[i];
    const HeadToHeadCell& y = second.cells[i];
    EXPECT_EQ(x.regime, y.regime);
    EXPECT_EQ(x.policy, y.policy);
    EXPECT_EQ(x.mean_cost, y.mean_cost) << x.regime << "/" << x.policy;
    EXPECT_EQ(x.cost_lo, y.cost_lo);
    EXPECT_EQ(x.cost_hi, y.cost_hi);
    EXPECT_EQ(x.miss_rate, y.miss_rate);
  }
  EXPECT_EQ(first.drawn_bid, second.drawn_bid);
}

}  // namespace
}  // namespace redspot
