// The pluggable stream transport (common/transport): endpoint parsing,
// unix + TCP listen/connect/accept round trips, the not-there-yet connect
// contract, EOF semantics — and the deterministic fault layer: scripted
// FaultyStream behavior for all five fault kinds, the purity of
// fault_at(), NetFaultPlan parsing, and the injector's process-wide
// budget and arming.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/frame.hpp"
#include "common/transport/fault.hpp"
#include "common/transport/transport.hpp"

namespace redspot {
namespace {

namespace fs = std::filesystem;
using transport::Endpoint;
using transport::FaultAction;
using transport::FaultKind;
using transport::FaultyStream;
using transport::NetFaultInjector;
using transport::NetFaultPlan;
using transport::parse_endpoint;
using transport::parse_net_fault_plan;

std::string tmp_sock(const std::string& name) {
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("redspot_tt_" + name + "_" +
                      std::to_string(::getpid()) + ".sock");
  fs::remove(p);
  return p.string();
}

/// Polls the non-blocking listener until the pending connection arrives.
std::unique_ptr<transport::Stream> accept_one(transport::Listener& l) {
  for (int i = 0; i < 2000; ++i) {
    if (auto s = l.accept()) return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return nullptr;
}

/// A connected (accepted-side, dialer-side) pair over `ep_text`.
std::pair<std::unique_ptr<transport::Stream>,
          std::unique_ptr<transport::Stream>>
make_pair_over(const std::string& ep_text,
               std::unique_ptr<transport::Listener>* keep_listener = nullptr) {
  const auto ep = parse_endpoint(ep_text);
  EXPECT_TRUE(ep.has_value());
  auto listener = transport::listen(*ep);
  auto dialer = transport::connect(listener->local_endpoint());
  EXPECT_NE(dialer, nullptr);
  auto accepted = accept_one(*listener);
  EXPECT_NE(accepted, nullptr);
  if (keep_listener != nullptr) *keep_listener = std::move(listener);
  return {std::move(accepted), std::move(dialer)};
}

/// Reads until one complete frame, EOF (nullopt), or corruption (throws).
std::optional<std::string> read_frame(transport::Stream& s, FrameBuffer& buf) {
  std::string payload;
  for (;;) {
    switch (buf.next(&payload)) {
      case FrameStatus::kOk:
        return payload;
      case FrameStatus::kCorrupt:
        throw std::runtime_error("corrupt frame");
      case FrameStatus::kNeedMore:
        break;
    }
    if (!s.read_into(buf)) return std::nullopt;
  }
}

// --- endpoint parsing -------------------------------------------------------

TEST(EndpointParse, UnixForms) {
  const auto bare = parse_endpoint("/tmp/fab.sock");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(bare->path, "/tmp/fab.sock");
  EXPECT_EQ(bare->str(), "unix:/tmp/fab.sock");

  const auto prefixed = parse_endpoint("unix:/run/x.sock");
  ASSERT_TRUE(prefixed.has_value());
  EXPECT_EQ(prefixed->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(prefixed->path, "/run/x.sock");
}

TEST(EndpointParse, TcpForms) {
  const auto ep = parse_endpoint("tcp:127.0.0.1:8443");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 8443);
  EXPECT_EQ(ep->str(), "tcp:127.0.0.1:8443");

  const auto ephemeral = parse_endpoint("tcp:0.0.0.0:0");
  ASSERT_TRUE(ephemeral.has_value());
  EXPECT_EQ(ephemeral->port, 0);
}

TEST(EndpointParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_endpoint(""));
  EXPECT_FALSE(parse_endpoint("unix:"));
  EXPECT_FALSE(parse_endpoint("tcp:"));
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1"));       // missing port
  EXPECT_FALSE(parse_endpoint("tcp::8080"));           // missing host
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1:"));      // empty port
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1:waffle"));
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1:70000"));  // > 65535
  EXPECT_FALSE(parse_endpoint("tcp:127.0.0.1:-1"));
}

// --- live round trips -------------------------------------------------------

TEST(Transport, UnixRoundTripBothDirections) {
  auto [server, client] = make_pair_over(tmp_sock("rt"));
  transport::send_frame(*client, "ping");
  transport::send_frame(*server, "pong");
  FrameBuffer sbuf, cbuf;
  EXPECT_EQ(read_frame(*server, sbuf), "ping");
  EXPECT_EQ(read_frame(*client, cbuf), "pong");
}

TEST(Transport, TcpRoundTripResolvesEphemeralPort) {
  std::unique_ptr<transport::Listener> listener;
  auto [server, client] = make_pair_over("tcp:127.0.0.1:0", &listener);
  const Endpoint bound = listener->local_endpoint();
  EXPECT_EQ(bound.kind, Endpoint::Kind::kTcp);
  EXPECT_GT(bound.port, 0) << "port 0 must resolve to the kernel's pick";
  transport::send_frame(*client, "over tcp");
  FrameBuffer buf;
  EXPECT_EQ(read_frame(*server, buf), "over tcp");
}

TEST(Transport, ConnectToAbsentPeerIsNullptrNotThrow) {
  // Unix: no socket file.
  const auto gone = parse_endpoint(tmp_sock("absent"));
  EXPECT_EQ(transport::connect(*gone), nullptr);
  EXPECT_TRUE(errno == ENOENT || errno == ECONNREFUSED) << errno;

  // TCP: a port nobody listens on (bind :0, learn the port, close).
  {
    const auto probe = parse_endpoint("tcp:127.0.0.1:0");
    Endpoint closed;
    {
      auto listener = transport::listen(*probe);
      closed = listener->local_endpoint();
    }
    EXPECT_EQ(transport::connect(closed), nullptr);
    EXPECT_EQ(errno, ECONNREFUSED);
  }
}

TEST(Transport, AcceptIsNonBlockingWhenIdle) {
  const auto ep = parse_endpoint(tmp_sock("idle"));
  auto listener = transport::listen(*ep);
  EXPECT_EQ(listener->accept(), nullptr);  // must return, not block
}

TEST(Transport, PeerCloseReadsAsEof) {
  auto [server, client] = make_pair_over(tmp_sock("eof"));
  client.reset();
  FrameBuffer buf;
  EXPECT_EQ(read_frame(*server, buf), std::nullopt);
}

TEST(Transport, WriteToDeadPeerThrowsNotSigpipe) {
  auto [server, client] = make_pair_over(tmp_sock("dead"));
  server.reset();
  // The first write may land in the kernel buffer; keep pushing until the
  // RST surfaces. If SIGPIPE were not suppressed this would kill the test
  // binary rather than throw.
  const std::string frame = encode_frame(std::string(4096, 'x'));
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) client->write_all(frame);
      },
      std::runtime_error);
}

TEST(Transport, StaleUnixSocketIsReclaimed) {
  const std::string path = tmp_sock("stale");
  const auto ep = parse_endpoint(path);
  {
    auto listener = transport::listen(*ep);
    // Simulate a crash: drop the listener object but leave the file.
  }
  // A second bind over the (now stale, or cleanly removed) path must work.
  auto listener = transport::listen(*ep);
  auto dialer = transport::connect(*ep);
  EXPECT_NE(dialer, nullptr);
}

// --- scripted FaultyStream --------------------------------------------------

/// Hook firing exactly once, on the first write, with the given action.
FaultyStream::Hook once(FaultAction action) {
  auto fired = std::make_shared<bool>(false);
  return [fired, action](std::uint64_t,
                         std::size_t) -> std::optional<FaultAction> {
    if (*fired) return std::nullopt;
    *fired = true;
    return action;
  };
}

TEST(FaultyStream, DropConnThrowsAndPeerSeesCleanEof) {
  auto [server, client] = make_pair_over(tmp_sock("fdrop"));
  FaultyStream faulty(std::move(client), once({FaultKind::kDropConn, 0, 0}));
  EXPECT_THROW(faulty.write_all(encode_frame("doomed")), std::runtime_error);
  FrameBuffer buf;
  EXPECT_EQ(read_frame(*server, buf), std::nullopt);  // EOF, not corrupt
  // The stream is broken for good — later I/O fails fast.
  EXPECT_THROW(faulty.write_all("more"), std::runtime_error);
  char c = 0;
  EXPECT_THROW(faulty.read_some(&c, 1), std::runtime_error);
}

TEST(FaultyStream, DelayDeliversTheFrameIntact) {
  auto [server, client] = make_pair_over(tmp_sock("fdelay"));
  FaultyStream faulty(std::move(client), once({FaultKind::kDelay, 0, 5}));
  faulty.write_all(encode_frame("late but whole"));
  FrameBuffer buf;
  EXPECT_EQ(read_frame(*server, buf), "late but whole");
}

TEST(FaultyStream, DuplicateDeliversTwice) {
  auto [server, client] = make_pair_over(tmp_sock("fdup"));
  FaultyStream faulty(std::move(client), once({FaultKind::kDuplicate, 0, 0}));
  faulty.write_all(encode_frame("echo"));
  FrameBuffer buf;
  EXPECT_EQ(read_frame(*server, buf), "echo");
  EXPECT_EQ(read_frame(*server, buf), "echo");
}

TEST(FaultyStream, PartitionSwallowsWritesWhileReadsFlow) {
  auto [server, client] = make_pair_over(tmp_sock("fpart"));
  FaultyStream faulty(std::move(client), once({FaultKind::kPartition, 0, 0}));
  faulty.write_all(encode_frame("vanishes"));  // no throw, no delivery
  faulty.write_all(encode_frame("also vanishes"));
  // Reads still flow toward the partitioned side: one-way, not two-way.
  transport::send_frame(*server, "inbound survives");
  FrameBuffer buf;
  EXPECT_EQ(read_frame(faulty, buf), "inbound survives");
  // And the server never got a byte: nothing to read.
  EXPECT_EQ(faulty.bytes_offered(),
            encode_frame("vanishes").size() +
                encode_frame("also vanishes").size());
}

TEST(FaultyStream, OffsetAccountingAdvancesPreFault) {
  std::vector<std::uint64_t> offsets;
  auto [server, client] = make_pair_over(tmp_sock("foff"));
  FaultyStream faulty(std::move(client),
                      [&](std::uint64_t off,
                          std::size_t) -> std::optional<FaultAction> {
                        offsets.push_back(off);
                        return std::nullopt;
                      });
  faulty.write_all("abcd");
  faulty.write_all("efgh");
  faulty.write_all("i");
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 4u);
  EXPECT_EQ(offsets[2], 8u);
}

// --- plan parsing and fault_at purity ---------------------------------------

TEST(NetFaultPlanParse, AcceptsTheDocumentedForms) {
  const auto basic = parse_net_fault_plan("7:0.25");
  ASSERT_TRUE(basic.has_value());
  EXPECT_EQ(basic->seed, 7u);
  EXPECT_DOUBLE_EQ(basic->rate, 0.25);
  EXPECT_EQ(basic->kinds, transport::kAllFaultKinds);
  EXPECT_EQ(basic->max_faults, 8u);

  const auto kinds = parse_net_fault_plan("9:1.0:ct");
  ASSERT_TRUE(kinds.has_value());
  EXPECT_EQ(kinds->kinds, transport::fault_bit(FaultKind::kDropConn) |
                              transport::fault_bit(FaultKind::kTruncate));

  const auto full = parse_net_fault_plan("3:0.5:*:17");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->kinds, transport::kAllFaultKinds);
  EXPECT_EQ(full->max_faults, 17u);

  EXPECT_TRUE(parse_net_fault_plan("0:0")->enabled() == false);
}

TEST(NetFaultPlanParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_net_fault_plan(""));
  EXPECT_FALSE(parse_net_fault_plan("7"));
  EXPECT_FALSE(parse_net_fault_plan("x:0.5"));
  EXPECT_FALSE(parse_net_fault_plan("7:nope"));
  EXPECT_FALSE(parse_net_fault_plan("7:1.5"));     // rate > 1
  EXPECT_FALSE(parse_net_fault_plan("7:-0.1"));    // rate < 0
  EXPECT_FALSE(parse_net_fault_plan("7:0.5:z"));   // unknown kind letter
  EXPECT_FALSE(parse_net_fault_plan("7:0.5:c:no"));
  EXPECT_FALSE(parse_net_fault_plan("7:0.5:c:1:extra"));
}

TEST(FaultAt, IsAPureFunctionOfItsInputs) {
  NetFaultPlan plan;
  plan.seed = 42;
  plan.rate = 0.3;
  for (std::uint64_t conn = 0; conn < 3; ++conn) {
    for (std::uint64_t off = 0; off < 500; off += 7) {
      const auto first = transport::fault_at(plan, conn, off);
      for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(transport::fault_at(plan, conn, off), first)
            << "conn=" << conn << " off=" << off;
    }
  }
}

TEST(FaultAt, NarrowingKindsNeverMovesWhereFaultsLand) {
  // The fire/no-fire draw is independent of the kind pick, so restricting
  // `kinds` changes WHAT happens at a faulted write, never WHICH writes
  // fault — chaos schedules stay comparable across fault menus.
  NetFaultPlan all;
  all.seed = 99;
  all.rate = 0.2;
  NetFaultPlan only_drop = all;
  only_drop.kinds = transport::fault_bit(FaultKind::kDropConn);

  std::set<std::uint64_t> all_sites, drop_sites;
  for (std::uint64_t off = 0; off < 4000; ++off) {
    if (transport::fault_at(all, 1, off)) all_sites.insert(off);
    if (const auto k = transport::fault_at(only_drop, 1, off)) {
      drop_sites.insert(off);
      EXPECT_EQ(*k, FaultKind::kDropConn);
    }
  }
  EXPECT_EQ(all_sites, drop_sites);
  EXPECT_FALSE(all_sites.empty()) << "rate 0.2 over 4000 offsets fired never";
}

TEST(FaultAt, RateZeroAndRateOneBehave) {
  NetFaultPlan off;
  off.seed = 5;
  off.rate = 0.0;
  NetFaultPlan always;
  always.seed = 5;
  always.rate = 1.0;
  for (std::uint64_t o = 0; o < 200; ++o) {
    EXPECT_FALSE(transport::fault_at(off, 0, o));
    EXPECT_TRUE(transport::fault_at(always, 0, o));
  }
}

// --- the injector -----------------------------------------------------------

TEST(NetFaultInjector, DisabledPlanIsPassthrough) {
  NetFaultInjector injector(NetFaultPlan{});  // rate 0 = disabled
  auto [server, client] = make_pair_over(tmp_sock("inj_off"));
  auto wrapped = injector.wrap(std::move(client));
  transport::send_frame(*wrapped, "clean");
  FrameBuffer buf;
  EXPECT_EQ(read_frame(*server, buf), "clean");
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(NetFaultInjector, BudgetBoundsTotalInjections) {
  // Duplicate-only at rate 1.0: every write would double-deliver, but the
  // budget of 3 lets exactly three fire. 10 frames in → 13 frames out.
  NetFaultPlan plan;
  plan.seed = 11;
  plan.rate = 1.0;
  plan.kinds = transport::fault_bit(FaultKind::kDuplicate);
  plan.max_faults = 3;
  NetFaultInjector injector(plan);

  auto [server, client] = make_pair_over(tmp_sock("inj_budget"));
  auto wrapped = injector.wrap(std::move(client));
  for (int i = 0; i < 10; ++i)
    transport::send_frame(*wrapped, std::string("n") + std::to_string(i));
  wrapped.reset();  // EOF so the count below is final

  FrameBuffer buf;
  int frames = 0;
  while (read_frame(*server, buf)) ++frames;
  EXPECT_EQ(frames, 13);
  EXPECT_EQ(injector.injected(), 3u);
}

TEST(NetFaultInjector, UnarmedInjectsNothingUntilArmed) {
  NetFaultPlan plan;
  plan.seed = 11;
  plan.rate = 1.0;
  plan.kinds = transport::fault_bit(FaultKind::kDuplicate);
  plan.max_faults = 100;
  NetFaultInjector injector(plan, /*armed=*/false);

  auto [server, client] = make_pair_over(tmp_sock("inj_arm"));
  auto wrapped = injector.wrap(std::move(client));
  transport::send_frame(*wrapped, "setup");
  EXPECT_EQ(injector.injected(), 0u);
  injector.arm();
  transport::send_frame(*wrapped, "chaos");
  EXPECT_GT(injector.injected(), 0u);
}

}  // namespace
}  // namespace redspot
