// Multi-type universe suite (DESIGN.md §15): the Cholesky factorization
// behind correlated type innovations, the price-scale replay property of
// scaled_spec, the universe's lane metadata, and the end-to-end check
// that the regime's type-correlation matrix actually materializes in the
// generated lanes' VAR residuals.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "market/regime.hpp"
#include "market/universe.hpp"
#include "trace/synthetic.hpp"
#include "trace/var.hpp"
#include "trace/zone_traces.hpp"

namespace redspot {
namespace {

/// One calm month, default calibration, `zones` zones.
SyntheticTraceSpec small_spec(std::size_t zones) {
  SyntheticTraceSpec spec;
  spec.seed = 11;
  spec.num_zones = zones;
  spec.params.assign(1, std::vector<ZoneMonthParams>(zones));
  return spec;
}

TEST(CholeskyLower, FactorsSpdMatricesAndRejectsTheRest) {
  const Matrix a{{1.0, 0.8, 0.5}, {0.8, 1.0, 0.6}, {0.5, 0.6, 1.0}};
  const Matrix l = cholesky_lower(a);
  const Matrix recon = l * l.transposed();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-12) << i << "," << j;
      if (j > i) {
        EXPECT_EQ(l(i, j), 0.0);  // strictly lower triangular
      }
    }
  }
  Matrix asym = a;
  asym(0, 1) = 0.3;
  EXPECT_THROW(cholesky_lower(asym), CheckFailure);
  const Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_THROW(cholesky_lower(indefinite), CheckFailure);
  EXPECT_THROW(cholesky_lower(Matrix(2, 3)), CheckFailure);
}

TEST(ScaledSpec, ReplaysTheSameSamplePathAtScale) {
  const SyntheticTraceSpec spec = small_spec(1);
  const ZoneTraceSet base = generate_traces(spec);
  for (const double k : {0.5, 2.0}) {
    const ZoneTraceSet scaled = generate_traces(scaled_spec(spec, k));
    ASSERT_EQ(scaled.zone(0).size(), base.zone(0).size());
    for (std::size_t i = 0; i < base.zone(0).size(); ++i) {
      // Same dwell/publish/innovation draws, k times the price level —
      // exact up to the independent $0.001 quantizations.
      EXPECT_NEAR(scaled.zone(0).sample(i).to_double(),
                  k * base.zone(0).sample(i).to_double(), 0.002)
          << "k=" << k << " step " << i;
    }
  }
}

TEST(GenerateUniverse, LaneMetadataIsTypeMajor) {
  const MarketRegime regime = MarketRegime::modern_multi();
  const SyntheticTraceSpec base = small_spec(2);
  const UniverseTraces u = generate_universe(regime, base);

  EXPECT_EQ(u.zones_per_type, 2u);
  EXPECT_EQ(u.num_types(), 3u);
  ASSERT_EQ(u.traces.num_zones(), 6u);
  const std::vector<double> want_scale = {1.0, 1.0, 0.5, 0.5, 0.25, 0.25};
  const std::vector<std::size_t> want_type = {0, 0, 1, 1, 2, 2};
  EXPECT_EQ(u.lane_scale, want_scale);
  EXPECT_EQ(u.lane_type, want_type);
  EXPECT_EQ(u.lane(1, 1), 3u);
  EXPECT_EQ(u.traces.zone_name(0).rfind("c5.18xlarge/", 0), 0u);
  EXPECT_EQ(u.traces.zone_name(3).rfind("c5.9xlarge/", 0), 0u);
  EXPECT_EQ(u.traces.zone(0).size(), generate_traces(base).zone(0).size());

  // Price levels track the type scales: the half-scale type trades at
  // about half the flagship's level.
  const auto mean_price = [&u](std::size_t lane) {
    double sum = 0.0;
    const PriceSeries& s = u.traces.zone(lane);
    for (std::size_t i = 0; i < s.size(); ++i) sum += s.sample(i).to_double();
    return sum / static_cast<double>(s.size());
  };
  EXPECT_NEAR(mean_price(u.lane(1, 0)) / mean_price(u.lane(0, 0)), 0.5, 0.05);
}

TEST(GenerateUniverse, RequiresATypeUniverse) {
  EXPECT_THROW(
      generate_universe(MarketRegime::classic_2012(), small_spec(1)),
      CheckFailure);
}

TEST(GenerateUniverse, TypeCorrelationMaterializesInVarResiduals) {
  // Two identically-scaled types, one zone each, calibrated so almost
  // every innovation reaches the published price (no clamp, no spikes,
  // high publish probability).
  const auto make_regime = [](double rho) {
    MarketRegime r;
    r.name = "corr-test";
    r.types = {{"type-a", 1.0}, {"type-b", 1.0}};
    r.type_correlation = {{1.0, rho}, {rho, 1.0}};
    return r;
  };
  SyntheticTraceSpec base = small_spec(1);
  base.floor = Money::cents(1);
  base.cap = Money::dollars(50.0);
  base.params[0][0].calm.level = 1.0;
  base.params[0][0].calm.innovation_sd = 0.05;
  base.params[0][0].calm.change_prob = 0.95;

  const auto off_diagonal = [&base, &make_regime](double rho) {
    const UniverseTraces u = generate_universe(make_regime(rho), base);
    std::vector<std::vector<double>> series(2);
    for (std::size_t lane = 0; lane < 2; ++lane) {
      const PriceSeries& s = u.traces.zone(lane);
      series[lane].reserve(s.size());
      for (std::size_t i = 0; i < s.size(); ++i)
        series[lane].push_back(s.sample(i).to_double());
    }
    const Matrix rc = residual_correlation(fit_var(series, 1));
    EXPECT_EQ(rc(0, 0), 1.0);
    EXPECT_NEAR(rc(0, 1), rc(1, 0), 1e-12);
    return rc(0, 1);
  };

  // Lane innovations mix the type factor at weight w = 0.6, so lanes of
  // types correlated at rho land near w^2 * rho; the AR(1) publish gating
  // attenuates further. The comparative assertion is what matters.
  const double correlated = off_diagonal(0.8);
  const double independent = off_diagonal(0.0);
  EXPECT_GT(correlated, 0.15);
  EXPECT_LT(std::fabs(independent), 0.1);
  EXPECT_GT(correlated, independent + 0.1);
}

TEST(InnovationOverride, DimensionsAreValidated) {
  SyntheticTraceSpec spec = small_spec(2);
  const std::vector<std::vector<double>> wrong_zones(
      1, std::vector<double>(16, 0.0));
  spec.innovation_override = &wrong_zones;
  EXPECT_THROW(generate_traces(spec), CheckFailure);

  const std::size_t steps = generate_traces(small_spec(2)).zone(0).size();
  const std::vector<std::vector<double>> wrong_steps(
      2, std::vector<double>(steps - 1, 0.0));
  spec.innovation_override = &wrong_steps;
  EXPECT_THROW(generate_traces(spec), CheckFailure);

  // Matching dims generate; zero innovations pin the price to the regime
  // level (quantized), which pins the override plumbing end to end.
  const std::vector<std::vector<double>> zeros(
      2, std::vector<double>(steps, 0.0));
  spec.innovation_override = &zeros;
  const ZoneTraceSet flat = generate_traces(spec);
  ASSERT_EQ(flat.zone(0).size(), steps);
  EXPECT_NEAR(flat.zone(0).sample(steps / 2).to_double(), 0.30, 0.001);
}

}  // namespace
}  // namespace redspot
