// Batched-vs-scalar bit-identity property suite (DESIGN.md §14).
//
// The BatchedSweepEngine's whole contract is that N lanes advanced in
// lockstep over shared cache-resident state reproduce what N independent
// scalar Engine::run() calls produce, bit-for-bit: costs, termination
// outcome, accounting counters, and (when recorded) the full timeline.
// These tests drive that contract over randomized config grids — mixed
// policies, bids (including never-in-bid and always-in-bid), zone
// subsets, start offsets, compute sizes, and both trace shapes (alphabet
// / unique-mode and random-walk / quantile-binned windows) — plus the SoA
// kernels the lockstep driver is built from, and a ThreadPool stress run
// exercising the engine's many-concurrent-run() thread-safety claim
// (meaningful under TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "core/batch/batch_state.hpp"
#include "core/batch/batched_engine.hpp"
#include "core/strategy.hpp"
#include "markov/model.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using batch::BatchConfig;
using batch::BatchedSweepEngine;
using batch::BatchState;

// --- SoA kernels -------------------------------------------------------------

TEST(BatchKernels, ArgminPicksEarliestLaneLowestIndexOnTies) {
  BatchState state;
  state.next_time = {50, 20, 80, 20};
  EXPECT_EQ(batch::argmin_next(state), 1u);
  EXPECT_EQ(batch::min_next(state), 20);

  state.next_time = {kNever, 7, 7, kNever};
  EXPECT_EQ(batch::argmin_next(state), 1u);
  EXPECT_EQ(batch::min_next(state), 7);
}

TEST(BatchKernels, ArgminAllFinishedLanes) {
  BatchState state;
  state.next_time = {kNever, kNever, kNever};
  EXPECT_EQ(batch::argmin_next(state), SIZE_MAX);
  EXPECT_EQ(batch::min_next(state), kNever);

  state.resize(0);
  EXPECT_EQ(batch::argmin_next(state), SIZE_MAX);
  EXPECT_EQ(batch::min_next(state), kNever);
}

TEST(BatchKernels, ArgminMatchesStdMinElementOnRandomArrays) {
  Rng rng(7001);
  for (int trial = 0; trial < 200; ++trial) {
    BatchState state;
    const std::size_t n = 1 + rng.uniform_index(40);
    for (std::size_t i = 0; i < n; ++i) {
      // Small value range so ties are common; some lanes finished.
      state.next_time.push_back(
          rng.bernoulli(0.2) ? kNever
                             : static_cast<SimTime>(rng.uniform_index(12)));
    }
    const auto it =
        std::min_element(state.next_time.begin(), state.next_time.end());
    EXPECT_EQ(batch::min_next(state), *it);
    if (*it == kNever) {
      EXPECT_EQ(batch::argmin_next(state), SIZE_MAX);
    } else {
      // min_element returns the FIRST minimum: the same lowest-index
      // tie rule the kernel implements.
      EXPECT_EQ(batch::argmin_next(state),
                static_cast<std::size_t>(
                    std::distance(state.next_time.begin(), it)));
    }
  }
}

TEST(BatchKernels, MapAliveStatesMatchesModelMaxAliveState) {
  Rng rng(7002);
  for (int trial = 0; trial < 50; ++trial) {
    // Random ascending state prices, bids straddling / outside the range.
    MarkovModel model;
    double p = rng.uniform(0.05, 0.40);
    const std::size_t n = 2 + rng.uniform_index(30);
    for (std::size_t i = 0; i < n; ++i) {
      model.state_prices.push_back(p);
      p += rng.uniform(0.01, 0.50);
    }
    std::vector<Money> bids;
    for (int b = 0; b < 12; ++b)
      bids.push_back(Money::dollars(rng.uniform(0.01, p + 0.5)));
    bids.push_back(Money::dollars(model.state_prices.front()));  // exact edge
    bids.push_back(Money::dollars(model.state_prices.back()));
    bids.push_back(Money::cents(1));  // below every state

    std::vector<std::int32_t> alive(bids.size());
    batch::map_alive_states(model.state_prices, bids, alive);
    for (std::size_t j = 0; j < bids.size(); ++j) {
      const std::size_t expected = model.max_alive_state(bids[j]);
      if (expected == SIZE_MAX) {
        EXPECT_EQ(alive[j], -1);
      } else {
        EXPECT_EQ(alive[j], static_cast<std::int32_t>(expected));
      }
    }
  }
}

// --- Batched vs scalar -------------------------------------------------------

PriceSeries alphabet_series(Rng& rng, std::size_t samples) {
  static const double kLevels[] = {0.25, 0.27, 0.30, 0.35,
                                   0.55, 0.81, 1.20, 2.50};
  std::vector<Money> out;
  out.reserve(samples);
  Money cur = Money::dollars(kLevels[rng.uniform_index(8)]);
  for (std::size_t i = 0; i < samples; ++i) {
    if (rng.bernoulli(0.2)) cur = Money::dollars(kLevels[rng.uniform_index(8)]);
    out.push_back(cur);
  }
  return PriceSeries(0, kPriceStep, std::move(out));
}

PriceSeries walk_series(Rng& rng, std::size_t samples) {
  std::vector<Money> out;
  out.reserve(samples);
  double cur = 0.30;
  for (std::size_t i = 0; i < samples; ++i) {
    cur = std::max(0.05, cur + rng.uniform(-0.02, 0.02));
    out.push_back(Money::dollars(cur));
  }
  return PriceSeries(0, kPriceStep, std::move(out));
}

RunResult scalar_run(const SpotMarket& market, const BatchConfig& config,
                     const EngineOptions& options) {
  FixedStrategy strategy(config.bid, config.zones,
                         make_policy(config.policy));
  Engine engine(market, config.experiment, strategy, options);
  return engine.run();
}

void expect_identical(const RunResult& batched, const RunResult& scalar,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(batched.total_cost.micros(), scalar.total_cost.micros());
  EXPECT_EQ(batched.spot_cost.micros(), scalar.spot_cost.micros());
  EXPECT_EQ(batched.on_demand_cost.micros(), scalar.on_demand_cost.micros());
  EXPECT_EQ(batched.completed, scalar.completed);
  EXPECT_EQ(batched.met_deadline, scalar.met_deadline);
  EXPECT_EQ(batched.finish_time, scalar.finish_time);
  EXPECT_EQ(batched.checkpoints_committed, scalar.checkpoints_committed);
  EXPECT_EQ(batched.restarts, scalar.restarts);
  EXPECT_EQ(batched.out_of_bid_terminations, scalar.out_of_bid_terminations);
  EXPECT_EQ(batched.full_outages, scalar.full_outages);
  EXPECT_EQ(batched.spot_instance_seconds, scalar.spot_instance_seconds);
  EXPECT_EQ(batched.on_demand_seconds, scalar.on_demand_seconds);
  EXPECT_EQ(batched.switched_to_on_demand, scalar.switched_to_on_demand);
  EXPECT_EQ(batched.committed_progress, scalar.committed_progress);
  ASSERT_EQ(batched.timeline.size(), scalar.timeline.size());
  for (std::size_t i = 0; i < batched.timeline.size(); ++i) {
    EXPECT_EQ(batched.timeline[i].time, scalar.timeline[i].time);
    EXPECT_EQ(batched.timeline[i].zone, scalar.timeline[i].zone);
    EXPECT_EQ(batched.timeline[i].kind, scalar.timeline[i].kind);
    EXPECT_EQ(batched.timeline[i].detail, scalar.timeline[i].detail);
  }
}

std::vector<BatchConfig> random_grid(Rng& rng, std::size_t num_zones,
                                     std::size_t lanes) {
  static const PolicyKind kPolicies[] = {
      PolicyKind::kPeriodic, PolicyKind::kMarkovDaly, PolicyKind::kRisingEdge,
      PolicyKind::kThreshold};
  // Bids spanning the interesting regimes: never-in-bid (forces the
  // deadline switch to on-demand), contested, and always-in-bid.
  static const double kBids[] = {0.01, 0.26, 0.60, 0.95, 3.50};

  std::vector<BatchConfig> configs;
  for (std::size_t i = 0; i < lanes; ++i) {
    BatchConfig c;
    c.experiment = testing::small_experiment(
        /*compute_hours=*/1.0 + static_cast<double>(rng.uniform_index(3)),
        /*slack_frac=*/0.5 + rng.uniform(0.0, 0.5),
        /*tc=*/5 * kMinute,
        /*start=*/static_cast<SimTime>(rng.uniform_index(4)) * kHour);
    c.policy = kPolicies[rng.uniform_index(4)];
    c.bid = Money::dollars(kBids[rng.uniform_index(5)]);
    c.zones.clear();
    const std::size_t first = rng.uniform_index(num_zones);
    for (std::size_t z = 0; z < num_zones; ++z)
      if (z == first || rng.bernoulli(0.4)) c.zones.push_back(z);
    configs.push_back(std::move(c));
  }
  return configs;
}

TEST(BatchedSweep, RandomGridsMatchScalarBitForBit) {
  Rng rng(9001);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t num_zones = 1 + static_cast<std::size_t>(trial) % 3;
    // Alternate trace shapes: alphabet keeps windows in unique mode,
    // random walks push them into the quantile-binned slide. Vary length
    // so the trace/deadline alignment differs per trial.
    const std::size_t samples = 288 + 48 * static_cast<std::size_t>(trial);
    std::vector<PriceSeries> series;
    for (std::size_t z = 0; z < num_zones; ++z) {
      series.push_back(trial % 2 == 0 ? alphabet_series(rng, samples)
                                      : walk_series(rng, samples));
    }
    const SpotMarket market = testing::make_market(testing::zones(series));

    // Timelines on: the strictest equality the engine can express.
    EngineOptions options;
    options.record_timeline = true;

    const std::vector<BatchConfig> configs =
        random_grid(rng, num_zones, /*lanes=*/12);
    const BatchedSweepEngine batcher(market, options);
    const std::vector<RunResult> batched = batcher.run(configs);
    ASSERT_EQ(batched.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expect_identical(batched[i], scalar_run(market, configs[i], options),
                       "trial " + std::to_string(trial) + " lane " +
                           std::to_string(i));
    }
  }
}

TEST(BatchedSweep, EdgeGroups) {
  Rng rng(9002);
  std::vector<PriceSeries> series;
  series.push_back(alphabet_series(rng, 288));
  series.push_back(walk_series(rng, 288));
  const SpotMarket market = testing::make_market(testing::zones(series));
  const BatchedSweepEngine batcher(market);

  // Empty group.
  EXPECT_TRUE(batcher.run({}).empty());

  // Single lane.
  std::vector<BatchConfig> one = random_grid(rng, 2, 1);
  expect_identical(batcher.run(one)[0], scalar_run(market, one[0], {}),
                   "single lane");

  // Identical lanes must produce identical results (shared state must not
  // leak one lane's progress into another).
  std::vector<BatchConfig> same(8, one[0]);
  const std::vector<RunResult> results = batcher.run(same);
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_identical(results[i], results[0],
                     "clone lane " + std::to_string(i));
  }
}

TEST(BatchedSweep, CanBatchRejectsFaultedOptions) {
  EXPECT_TRUE(BatchedSweepEngine::can_batch(EngineOptions{}));
  EngineOptions faulted;
  faulted.faults.restart_failure_rate = 0.1;
  EXPECT_FALSE(BatchedSweepEngine::can_batch(faulted));
}

// One immutable BatchedSweepEngine serving many concurrent run() calls:
// the thread-safety claim the sweep fabric relies on. Every concurrent
// result must equal the single-threaded reference; under TSan this also
// proves the shared trace index and per-run state carry no hidden races.
TEST(BatchedSweep, ConcurrentRunsShareOneEngine) {
  Rng rng(9003);
  std::vector<PriceSeries> series;
  series.push_back(alphabet_series(rng, 288));
  series.push_back(walk_series(rng, 288));
  const SpotMarket market = testing::make_market(testing::zones(series));
  const BatchedSweepEngine batcher(market);

  const std::vector<BatchConfig> configs = random_grid(rng, 2, 8);
  const std::vector<RunResult> reference = batcher.run(configs);

  constexpr int kRuns = 8;
  std::vector<std::vector<RunResult>> results(kRuns);
  ThreadPool pool(4);
  for (int r = 0; r < kRuns; ++r) {
    pool.submit([&, r] { results[r] = batcher.run(configs); });
  }
  pool.wait_idle();

  for (int r = 0; r < kRuns; ++r) {
    ASSERT_EQ(results[r].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_identical(results[r][i], reference[i],
                       "run " + std::to_string(r) + " lane " +
                           std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace redspot
