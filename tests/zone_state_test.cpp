// Zone state machine: the legal-transition table is pinned exhaustively
// (every one of the 8x8 pairs), and every ZoneMachine operation is driven
// through its legal states plus a rejected illegal attempt from a state
// that must not allow it.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/events/event_queue.hpp"
#include "core/zone/zone_machine.hpp"
#include "core/zone/zone_state.hpp"

namespace redspot {
namespace {

using S = ZoneState;

/// The 20 legal transitions, straight from the design table.
const std::pair<S, S> kLegal[] = {
    {S::kDown, S::kWaiting},        {S::kDown, S::kQueued},
    {S::kDown, S::kStopped},        {S::kWaiting, S::kDown},
    {S::kWaiting, S::kQueued},      {S::kQueued, S::kRestarting},
    {S::kQueued, S::kRunning},      {S::kQueued, S::kDown},
    {S::kRestarting, S::kRunning},  {S::kRestarting, S::kDown},
    {S::kRunning, S::kCheckpointing}, {S::kRunning, S::kDown},
    {S::kRunning, S::kRebalanceWarned},
    {S::kCheckpointing, S::kRunning}, {S::kCheckpointing, S::kDown},
    {S::kCheckpointing, S::kRebalanceWarned},
    {S::kRebalanceWarned, S::kCheckpointing},
    {S::kRebalanceWarned, S::kDown},
    {S::kStopped, S::kWaiting},     {S::kStopped, S::kDown},
};

bool in_table(S from, S to) {
  for (const auto& [f, t] : kLegal) {
    if (f == from && t == to) return true;
  }
  return false;
}

TEST(ZoneState, TransitionTableMatchesTheDesignExactly) {
  int allowed = 0;
  for (std::size_t f = 0; f < kNumZoneStates; ++f) {
    for (std::size_t t = 0; t < kNumZoneStates; ++t) {
      const S from = static_cast<S>(f);
      const S to = static_cast<S>(t);
      EXPECT_EQ(transition_allowed(from, to), in_table(from, to))
          << to_string(from) << " -> " << to_string(to);
      if (transition_allowed(from, to)) ++allowed;
    }
  }
  EXPECT_EQ(allowed, 20);
}

TEST(ZoneState, ActivityPredicatesAndNames) {
  EXPECT_FALSE(is_active(S::kDown));
  EXPECT_FALSE(is_active(S::kWaiting));
  EXPECT_FALSE(is_active(S::kStopped));
  EXPECT_TRUE(is_active(S::kQueued));
  EXPECT_TRUE(is_active(S::kRestarting));
  EXPECT_TRUE(is_active(S::kRunning));
  EXPECT_TRUE(is_active(S::kCheckpointing));
  EXPECT_TRUE(is_active(S::kRebalanceWarned));

  EXPECT_TRUE(is_computing(S::kRunning));
  EXPECT_TRUE(is_computing(S::kRebalanceWarned));
  EXPECT_FALSE(is_computing(S::kCheckpointing));
  EXPECT_FALSE(is_computing(S::kQueued));

  EXPECT_STREQ(to_string(S::kDown), "down");
  EXPECT_STREQ(to_string(S::kWaiting), "waiting");
  EXPECT_STREQ(to_string(S::kQueued), "queued");
  EXPECT_STREQ(to_string(S::kRestarting), "restarting");
  EXPECT_STREQ(to_string(S::kRunning), "running");
  EXPECT_STREQ(to_string(S::kCheckpointing), "checkpointing");
  EXPECT_STREQ(to_string(S::kStopped), "stopped");
  EXPECT_STREQ(to_string(S::kRebalanceWarned), "rebalance-warned");
}

// --- ZoneMachine -----------------------------------------------------------

struct RecordingSink final : ZoneTransitionSink {
  std::vector<std::tuple<std::size_t, S, S>> seen;
  void on_zone_transition(std::size_t zone, S from, S to) override {
    seen.emplace_back(zone, from, to);
  }
};

TEST(ZoneMachine, FullLifecycleReportsEveryTransition) {
  RecordingSink sink;
  ZoneMachine z(3, &sink);
  EXPECT_EQ(z.state(), S::kDown);
  EXPECT_FALSE(z.active());

  z.wake();                   // down -> waiting
  z.request();                // waiting -> queued
  EXPECT_TRUE(z.active());
  EXPECT_FALSE(z.running());
  z.begin_compute(100, 0);    // queued -> running
  EXPECT_TRUE(z.running());
  z.begin_checkpoint(400);    // running -> checkpointing
  EXPECT_TRUE(z.running());
  z.begin_compute(700, 300);  // checkpointing -> running
  z.terminate();              // running -> down
  z.stop();                   // down -> stopped
  z.resume();                 // stopped -> waiting
  z.sleep();                  // waiting -> down

  const std::vector<std::tuple<std::size_t, S, S>> expected = {
      {3, S::kDown, S::kWaiting},        {3, S::kWaiting, S::kQueued},
      {3, S::kQueued, S::kRunning},      {3, S::kRunning, S::kCheckpointing},
      {3, S::kCheckpointing, S::kRunning}, {3, S::kRunning, S::kDown},
      {3, S::kDown, S::kStopped},        {3, S::kStopped, S::kWaiting},
      {3, S::kWaiting, S::kDown},
  };
  EXPECT_EQ(sink.seen, expected);
}

TEST(ZoneMachine, RestartPathAndRetry) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);
  z.request();  // down -> queued (direct request is legal)
  z.begin_restart(3600);
  EXPECT_EQ(z.state(), S::kRestarting);
  EXPECT_EQ(z.restart_target(), 3600);
  z.retry_restart(7200);  // stays kRestarting, new target
  EXPECT_EQ(z.state(), S::kRestarting);
  EXPECT_EQ(z.restart_target(), 7200);
  z.begin_compute(500, 7200);
  EXPECT_EQ(z.state(), S::kRunning);
}

TEST(ZoneMachine, ProgressGrowsOnlyWhileRunningAndFreezesAtCheckpoint) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);
  z.request();
  EXPECT_EQ(z.progress(50), 0);  // queued: nothing accrues
  z.begin_compute(100, 50);
  EXPECT_EQ(z.progress(100), 50);
  EXPECT_EQ(z.progress(160), 110);
  // The checkpoint snapshot freezes the base; work during the write is at
  // risk and must not be counted until compute resumes.
  z.begin_checkpoint(160);
  EXPECT_EQ(z.progress_base(), 110);
  EXPECT_EQ(z.progress(400), 110);
  z.begin_compute(460, 110);
  EXPECT_EQ(z.progress(500), 150);
  z.terminate();
  // Termination loses everything since the last snapshot: only the frozen
  // base survives (a restart re-runs from the committed checkpoint).
  EXPECT_EQ(z.progress(900), 110);
}

TEST(ZoneMachine, IllegalTransitionsThrow) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);

  // From kDown.
  EXPECT_THROW(z.sleep(), CheckFailure);
  EXPECT_THROW(z.resume(), CheckFailure);
  EXPECT_THROW(z.terminate(), CheckFailure);
  EXPECT_THROW(z.begin_restart(0), CheckFailure);
  EXPECT_THROW(z.retry_restart(0), CheckFailure);
  EXPECT_THROW(z.begin_compute(0, 0), CheckFailure);
  EXPECT_THROW(z.begin_checkpoint(0), CheckFailure);

  z.wake();  // kWaiting
  EXPECT_THROW(z.wake(), CheckFailure);
  EXPECT_THROW(z.stop(), CheckFailure);
  EXPECT_THROW(z.resume(), CheckFailure);
  EXPECT_THROW(z.begin_compute(0, 0), CheckFailure);
  EXPECT_THROW(z.terminate(), CheckFailure);

  z.request();  // kQueued
  EXPECT_THROW(z.wake(), CheckFailure);
  EXPECT_THROW(z.request(), CheckFailure);
  EXPECT_THROW(z.begin_checkpoint(0), CheckFailure);
  EXPECT_THROW(z.force_down(), CheckFailure);  // active zones never force

  z.begin_compute(0, 0);  // kRunning
  EXPECT_THROW(z.request(), CheckFailure);
  EXPECT_THROW(z.begin_restart(0), CheckFailure);
  EXPECT_THROW(z.retry_restart(0), CheckFailure);
  EXPECT_THROW(z.stop(), CheckFailure);
  EXPECT_THROW(z.force_down(), CheckFailure);

  z.begin_checkpoint(10);  // kCheckpointing
  EXPECT_THROW(z.begin_checkpoint(10), CheckFailure);
  EXPECT_THROW(z.request(), CheckFailure);
  EXPECT_THROW(z.force_down(), CheckFailure);

  z.terminate();
  z.stop();  // kStopped
  EXPECT_THROW(z.wake(), CheckFailure);
  EXPECT_THROW(z.request(), CheckFailure);
  EXPECT_THROW(z.sleep(), CheckFailure);
  EXPECT_THROW(z.stop(), CheckFailure);
}

TEST(ZoneMachine, ForceDownRetiresInactiveStatesOnly) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);
  z.force_down();  // already down: no-op, no transition reported
  EXPECT_TRUE(sink.seen.empty());
  z.wake();
  z.force_down();
  EXPECT_EQ(z.state(), S::kDown);
  z.stop();
  z.force_down();
  EXPECT_EQ(z.state(), S::kDown);
}

TEST(ZoneMachine, RequestResetsRejectionAttempts) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);
  z.request();
  EXPECT_EQ(z.note_rejected(), 1);
  EXPECT_EQ(z.note_rejected(), 2);
  z.terminate();
  z.request();  // a fresh request starts the backoff ladder over
  EXPECT_EQ(z.note_rejected(), 1);
}

TEST(ZoneMachine, TerminateClearsManualStopFlag) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);
  z.request();
  z.set_manual_stop_pending(true);
  EXPECT_TRUE(z.manual_stop_pending());
  z.terminate();
  EXPECT_FALSE(z.manual_stop_pending());
}

TEST(ZoneMachine, CancelEventsClearsHandlesAndDoom) {
  RecordingSink sink;
  ZoneMachine z(0, &sink);
  EventQueue queue(0);
  z.ready_event = queue.schedule_at(EventKind::kInstanceReady, 0, 10, [] {});
  z.cycle_event = queue.schedule_at(EventKind::kCycleBoundary, 0, 20, [] {});
  z.doom_event = queue.schedule_at(EventKind::kDoom, 0, 30, [] {});
  z.mark_doomed();
  EXPECT_EQ(queue.pending_count(), 3u);

  z.cancel_events(queue);
  EXPECT_EQ(queue.pending_count(), 0u);
  EXPECT_EQ(z.ready_event, 0u);
  EXPECT_EQ(z.cycle_event, 0u);
  EXPECT_EQ(z.doom_event, 0u);
  EXPECT_FALSE(z.doomed());
}

}  // namespace
}  // namespace redspot
