// Shared process-fleet harness for the fabric kill-matrix suites
// (fabric_chaos_test: unix sockets; net_chaos_test: TCP + network-fault
// injection).
//
// Forks real binaries with stdout+stderr captured per process, respawns
// workers the chaos plan SIGKILLs, optionally SIGKILLs and restarts the
// coordinator once its journal reaches a size threshold, and normalizes
// output down to the bit-identity contract (the summary table) so every
// scenario compares against the single-process redspot-sim reference.
#pragma once

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace redspot::fleettest {

inline pid_t spawn(const std::vector<std::string>& args,
                   const std::string& out_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) _exit(127);
  ::dup2(fd, STDOUT_FILENO);
  ::dup2(fd, STDERR_FILENO);
  ::close(fd);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

inline int wait_for(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

inline bool try_reap(pid_t pid, int* status) {
  return ::waitpid(pid, status, WNOHANG) == pid;
}

inline std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

inline std::size_t file_size(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::size_t>(st.st_size)
                                        : 0;
}

/// Canonical summary: provenance/diagnostic lines dropped, the sim CLI's
/// table title aligned with the fabric's. What remains is the
/// bit-identity contract — every number in the summary table.
inline std::string normalize(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("journal:", 0) == 0) continue;
    if (line.rfind("fabric:", 0) == 0) continue;
    if (line.rfind("interrupted:", 0) == 0) continue;
    if (line.rfind("[WARN]", 0) == 0) continue;
    const std::string sim_title = "== redspot_sim ensemble — ";
    if (line.rfind(sim_title, 0) == 0)
      line = "== ensemble — " + line.substr(sim_title.size());
    out << line << '\n';
  }
  return out.str();
}

/// Reserves a TCP port on loopback: bind :0, read the kernel's pick,
/// close. The tiny race against another process grabbing it before the
/// coordinator rebinds is acceptable in an isolated test container, and a
/// fixed port (unlike tcp:127.0.0.1:0) survives a coordinator restart —
/// the kill-and-resume scenarios depend on that.
inline std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

struct FleetRun {
  std::string output;  ///< coordinator stdout+stderr
  int coordinator_status = 0;
  int worker_respawns = 0;
};

/// Builds one worker's argv; `slot` distinguishes fleet members that want
/// different flags (most fleets ignore it).
using WorkerArgvFn = std::function<std::vector<std::string>(std::size_t slot)>;

/// Runs one coordinator with `num_workers` workers, respawning any worker
/// that dies by signal (chaos SIGKILLs itself; a net-fault crash would
/// exit nonzero and is respawned too via `respawn_nonzero_exits`) while
/// the coordinator lives. If `kill_coordinator_at` > 0, SIGKILLs the
/// coordinator once `journal_file` reaches that size, then restarts it
/// with the same arguments.
inline FleetRun run_fleet(const std::filesystem::path& base,
                          const std::string& tag,
                          const std::vector<std::string>& coordinator_argv,
                          const WorkerArgvFn& worker_argv, int num_workers,
                          const std::string& journal_file = "",
                          std::size_t kill_coordinator_at = 0,
                          bool respawn_nonzero_exits = false) {
  const std::string coord_out = (base / (tag + "_coord.txt")).string();

  FleetRun run;
  pid_t coord = spawn(coordinator_argv, coord_out);
  EXPECT_GT(coord, 0);

  // Give the coordinator a moment to bind before the fleet dials in; a
  // worker that races it just backs off and retries, so this is comfort,
  // not correctness.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<pid_t> workers(static_cast<std::size_t>(num_workers), -1);
  auto spawn_worker = [&](std::size_t slot) {
    const std::string out =
        (base / (tag + "_worker" + std::to_string(slot) + ".txt")).string();
    workers[slot] = spawn(worker_argv(slot), out);
    EXPECT_GT(workers[slot], 0);
  };
  for (std::size_t i = 0; i < workers.size(); ++i) spawn_worker(i);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      // Non-convergence is a hard failure; put the fleet down and let the
      // caller's status assertion report it.
      ADD_FAILURE() << tag << ": fleet did not converge; coordinator output:\n"
                    << slurp(coord_out);
      ::kill(coord, SIGKILL);
      run.coordinator_status = wait_for(coord);
      break;
    }

    int status = 0;
    if (try_reap(coord, &status)) {
      run.coordinator_status = status;
      break;
    }

    if (kill_coordinator_at > 0 && !journal_file.empty() &&
        file_size(journal_file) >= kill_coordinator_at) {
      // SIGKILL the coordinator mid-run, then restart it against the
      // surviving journal with identical arguments.
      ::kill(coord, SIGKILL);
      wait_for(coord);
      kill_coordinator_at = 0;  // once
      coord = spawn(coordinator_argv, coord_out);
      EXPECT_GT(coord, 0);
      continue;
    }

    // Respawn casualties while the run is still going.
    for (std::size_t i = 0; i < workers.size(); ++i) {
      int wstatus = 0;
      if (workers[i] > 0 && try_reap(workers[i], &wstatus)) {
        workers[i] = -1;
        const bool killed = WIFSIGNALED(wstatus);
        const bool crashed = respawn_nonzero_exits && WIFEXITED(wstatus) &&
                             WEXITSTATUS(wstatus) != 0;
        if (killed || crashed) {
          ++run.worker_respawns;
          spawn_worker(i);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Fleet teardown: workers get Done and exit on their own; anything
  // still alive after a grace period is put down (not a test failure —
  // e.g. a worker mid-backoff when the run ended).
  const auto worker_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    while (workers[i] > 0) {
      int wstatus = 0;
      if (try_reap(workers[i], &wstatus)) {
        workers[i] = -1;
        break;
      }
      if (std::chrono::steady_clock::now() > worker_deadline) {
        ::kill(workers[i], SIGKILL);
        wait_for(workers[i]);
        workers[i] = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  run.output = slurp(coord_out);
  return run;
}

}  // namespace redspot::fleettest
