// Serve subsystem unit tests: wire-protocol roundtrips, the live
// TickStore, the LRU model registry, and — the subsystem's correctness
// contract — bit-identity between the incrementally slid advisor and the
// from-scratch offline Adaptive decision over the same history.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/daly.hpp"
#include "common/check.hpp"
#include "core/adaptive/estimator.hpp"
#include "core/adaptive/history_stats.hpp"
#include "markov/model.hpp"
#include "markov/uptime.hpp"
#include "serve/advisor.hpp"
#include "serve/proto.hpp"
#include "serve/registry.hpp"
#include "serve/tick_store.hpp"
#include "test_util.hpp"

namespace redspot::serve {
namespace {

using redspot::testing::constant_series;
using redspot::testing::step_series;
using redspot::testing::zones;

/// A 3-zone market with structure: a cheap stable zone, a spiky zone and
/// an expensive one. `steps` samples from t = 0.
ZoneTraceSet wavy_traces(std::size_t steps) {
  std::vector<Money> a, b, c;
  a.reserve(steps);
  b.reserve(steps);
  c.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    a.push_back(Money::cents(27 + static_cast<std::int64_t>(i % 7)));
    b.push_back(Money::cents((i / 40) % 2 == 0 ? 31 : 210));
    c.push_back(Money::cents(150 + static_cast<std::int64_t>(i % 13)));
  }
  return zones({PriceSeries(0, kPriceStep, std::move(a)),
                PriceSeries(0, kPriceStep, std::move(b)),
                PriceSeries(0, kPriceStep, std::move(c))});
}

JobParams default_job() {
  JobParams job;
  job.remaining_compute = 8 * kHour;
  job.remaining_time = 16 * kHour;
  return job;
}

// --- proto ------------------------------------------------------------------

TEST(ServeProto, TraceInitRoundtrip) {
  TraceInitMsg m;
  m.start = 1200;
  m.step = 300;
  m.zone_names = {"us-east-1a", "us-east-1b"};
  m.samples = {{Money::cents(27), Money::cents(31)},
               {Money::cents(40), Money::cents(41)}};
  m.capacity_samples = 99;
  const std::string payload = encode_trace_init(m);
  EXPECT_EQ(msg_type(payload), MsgType::kTraceInit);
  const auto d = decode_trace_init(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->protocol, kProtocolVersion);
  EXPECT_EQ(d->start, m.start);
  EXPECT_EQ(d->step, m.step);
  EXPECT_EQ(d->zone_names, m.zone_names);
  EXPECT_EQ(d->samples, m.samples);
  EXPECT_EQ(d->capacity_samples, 99u);
}

TEST(ServeProto, TickAndAckRoundtrip) {
  const std::string t = encode_tick(TickMsg{{Money::cents(33), Money::cents(44)}});
  const auto dt = decode_tick(t);
  ASSERT_TRUE(dt.has_value());
  EXPECT_EQ(dt->prices,
            (std::vector<Money>{Money::cents(33), Money::cents(44)}));
  const auto da = decode_tick_ack(encode_tick_ack(TickAckMsg{86700}));
  ASSERT_TRUE(da.has_value());
  EXPECT_EQ(da->end, 86700);
}

TEST(ServeProto, RegisterAndAdviseRoundtrip) {
  ModelSpec spec;
  spec.history_span = kDay;
  spec.max_states = 16;
  spec.policies = {PolicyKind::kMarkovDaly};
  const auto dr = decode_register(encode_register(RegisterMsg{spec}));
  ASSERT_TRUE(dr.has_value());
  EXPECT_EQ(dr->spec.spec_hash(), spec.spec_hash());

  AdviseMsg a;
  a.request_id = 77;
  a.spec_hash = spec.spec_hash();
  a.job = default_job();
  const auto da = decode_advise(encode_advise(a));
  ASSERT_TRUE(da.has_value());
  EXPECT_EQ(da->request_id, 77u);
  EXPECT_EQ(da->spec_hash, spec.spec_hash());
  EXPECT_EQ(da->job.remaining_compute, a.job.remaining_compute);
  EXPECT_EQ(da->job.on_demand_rate, a.job.on_demand_rate);
}

TEST(ServeProto, AdviceRoundtripIsExact) {
  Advice adv;
  adv.as_of = 86400;
  adv.bid = Money::cents(47);
  adv.zones = {0, 2};
  adv.policy = PolicyKind::kMarkovDaly;
  adv.predicted_cost = Money::dollars(7.93);
  adv.expected_uptime = 123456;
  adv.checkpoint_interval = 3921;
  const auto d = decode_advice(encode_advice(AdviceMsg{9, adv}));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->request_id, 9u);
  EXPECT_EQ(d->advice, adv);  // full bit-equality through the wire
}

TEST(ServeProto, StatsAndErrorRoundtrip) {
  StatsReplyMsg s;
  s.ticks = 1;
  s.advises = 2;
  s.batches = 3;
  s.max_batch = 4;
  s.models = 5;
  s.model_bytes = 6;
  s.evictions = 7;
  s.advise_p50_ns = 1234.5;
  s.advise_p99_ns = 6789.0;
  const auto ds = decode_stats_reply(encode_stats_reply(s));
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->max_batch, 4u);
  EXPECT_EQ(ds->advise_p50_ns, 1234.5);
  EXPECT_EQ(ds->advise_p99_ns, 6789.0);
  ASSERT_TRUE(decode_stats(encode_stats(StatsMsg{})).has_value());

  const auto de = decode_error(encode_error(ErrorMsg{42, "nope"}));
  ASSERT_TRUE(de.has_value());
  EXPECT_EQ(de->request_id, 42u);
  EXPECT_EQ(de->message, "nope");
}

TEST(ServeProto, MalformedPayloadsDecodeToNullopt) {
  EXPECT_FALSE(msg_type("abc").has_value());  // too short
  const std::string tick = encode_tick(TickMsg{{Money::cents(33)}});
  // Truncation at every prefix length must reject, never crash.
  for (std::size_t len = 0; len < tick.size(); ++len)
    EXPECT_FALSE(decode_tick(tick.substr(0, len)).has_value()) << len;
  // Trailing garbage is rejected too (decoders demand full consumption).
  EXPECT_FALSE(decode_tick(tick + "x").has_value());
  // Wrong tag: an advise payload is not a tick.
  EXPECT_FALSE(
      decode_tick(encode_advise(AdviseMsg{1, 2, default_job()})).has_value());
}

TEST(ServeProto, SpecHashIsOrderAndValueSensitive) {
  ModelSpec a;
  ModelSpec b;
  EXPECT_EQ(a.spec_hash(), b.spec_hash());
  b.max_states = 16;
  EXPECT_NE(a.spec_hash(), b.spec_hash());
  ModelSpec c;
  c.policies = {PolicyKind::kMarkovDaly, PolicyKind::kPeriodic};
  EXPECT_NE(a.spec_hash(), c.spec_hash());  // order matters
}

// --- tick store -------------------------------------------------------------

TEST(ServeTickStore, SeedsAppendsAndRejectsPastCapacity) {
  TickStore store(wavy_traces(10), /*capacity_samples=*/12);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.num_zones(), 3u);
  const SimTime end0 = store.end_time();

  const std::vector<Money> tick = {Money::cents(30), Money::cents(31),
                                   Money::cents(32)};
  EXPECT_EQ(store.append(tick), end0 + kPriceStep);
  EXPECT_EQ(store.append(tick), end0 + 2 * kPriceStep);
  EXPECT_EQ(store.size(), 12u);
  EXPECT_EQ(store.ticks(), 2u);
  EXPECT_THROW(store.append(tick), CheckFailure);  // capacity exhausted

  store.with_read([&](const ZoneTraceSet& traces) {
    EXPECT_EQ(traces.zone(0).size(), 12u);
    EXPECT_EQ(traces.zone(1).at(traces.end() - kPriceStep), Money::cents(31));
    return 0;
  });
}

TEST(ServeTickStore, RejectsCapacityBelowSeed) {
  EXPECT_THROW(TickStore(wavy_traces(10), 5), CheckFailure);
}

// --- registry ---------------------------------------------------------------

TEST(ServeRegistry, SharesOneEntryPerSpec) {
  ModelRegistry registry;
  ModelSpec spec;
  const auto a = registry.acquire(spec, 3);
  const auto b = registry.acquire(spec, 3);
  EXPECT_EQ(a.get(), b.get());  // same shared entry, not a copy
  EXPECT_EQ(registry.stats().entries, 1u);

  ModelSpec other;
  other.max_states = 8;
  const auto c = registry.acquire(other, 3);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(registry.stats().entries, 2u);
  EXPECT_EQ(registry.find(spec.spec_hash()).get(), a.get());
  EXPECT_EQ(registry.find(0xdeadbeef), nullptr);
}

TEST(ServeRegistry, EvictsUnderPressureAndRebuildsTransparently) {
  ModelSpec spec_a;
  ModelSpec spec_b;
  spec_b.max_states = 8;
  // Capacity fits exactly one entry: acquiring the second evicts the first.
  ModelRegistry registry(spec_a.approx_bytes(3) + 100);
  const auto a = registry.acquire(spec_a, 3);
  const auto b = registry.acquire(spec_b, 3);
  EXPECT_EQ(registry.stats().evictions, 1u);
  EXPECT_EQ(registry.find(spec_a.spec_hash()), nullptr);
  // The held pointer stays alive (shared ownership), and re-acquiring
  // builds a FRESH entry — correctness is unaffected because advice is a
  // pure function of (trace, spec, job); see the bit-identity tests.
  EXPECT_EQ(a->spec.spec_hash(), spec_a.spec_hash());
  const auto a2 = registry.acquire(spec_a, 3);
  EXPECT_NE(a2.get(), a.get());
}

// --- advisor ----------------------------------------------------------------

TEST(ServeAdvisor, MatchesTheOfflineAdaptiveDecisionExactly) {
  // The serve answer must be the offline Adaptive decision: a fresh
  // HistoryStats over the same window, ranked by evaluate_permutations,
  // with the Markov-Daly knobs computed the way the engine's policy does.
  const ZoneTraceSet traces = wavy_traces(400);
  ModelSpec spec;
  spec.history_span = kDay;
  const JobParams job = default_job();
  const Advice adv = advise_offline(spec, traces, job);

  const SimTime now = traces.end() - traces.step();
  const SimTime from = now - spec.history_span;
  const HistoryStats hist(traces, from, now, spec.bid_grid);
  EstimatorInputs in;
  in.remaining_compute = job.remaining_compute;
  in.remaining_time = job.remaining_time;
  in.checkpoint_cost = job.checkpoint_cost;
  in.restart_cost = job.restart_cost;
  in.mean_queue_delay = job.mean_queue_delay;
  in.on_demand_rate = job.on_demand_rate;
  for (std::size_t z = 0; z < traces.num_zones(); ++z)
    in.current_prices.push_back(traces.zone(z).at(now).to_double());
  const std::vector<PermutationEstimate> ranked =
      evaluate_permutations(hist, spec.max_zones, spec.policies, in);
  ASSERT_FALSE(ranked.empty());
  const PermutationEstimate& best = ranked.front();

  EXPECT_EQ(adv.as_of, now);
  EXPECT_EQ(adv.bid, best.bid);
  EXPECT_EQ(adv.zones, best.zones);
  EXPECT_EQ(adv.policy, best.policy);
  EXPECT_EQ(adv.predicted_cost, best.predicted_cost);

  // Knob oracle: the non-incremental Markov fit + closed-form uptime.
  Duration uptime = 0;
  for (std::size_t zone : adv.zones) {
    const MarkovModel model =
        build_markov_model(traces.zone(zone).view(from, now), spec.max_states);
    uptime += expected_uptime(model, traces.zone(zone).at(now), adv.bid);
  }
  EXPECT_EQ(adv.expected_uptime, uptime);
  if (adv.policy == PolicyKind::kMarkovDaly && uptime > 0)
    EXPECT_EQ(adv.checkpoint_interval, daly_interval(job.checkpoint_cost, uptime));
  else
    EXPECT_EQ(adv.checkpoint_interval, 0);
}

TEST(ServeAdvisor, SlidEntryIsBitIdenticalToOfflineAcrossLiveGrowth) {
  // The tentpole contract: a ModelEntry slid incrementally tick after tick
  // answers EXACTLY what a from-scratch advisor over the same trace
  // answers — every field, every time.
  const std::size_t kSeed = 300;
  const std::size_t kTotal = 420;
  const ZoneTraceSet full = wavy_traces(kTotal);

  TickStore store(full.window(full.start(),
                              full.start() + kPriceStep * static_cast<Duration>(
                                                              kSeed)),
                  kTotal);
  ModelSpec spec;
  spec.history_span = kDay;
  ModelEntry slid(spec);
  const JobParams job = default_job();

  std::vector<Money> prices(full.num_zones());
  std::size_t advises = 0;
  for (std::size_t i = kSeed; i < kTotal; ++i) {
    for (std::size_t z = 0; z < full.num_zones(); ++z)
      prices[z] = full.zone(z).view().sample(i);
    store.append(prices);
    store.with_read([&](const ZoneTraceSet& live) {
      const Advice incremental = compute_advice(slid, live, job);
      const Advice offline = advise_offline(spec, live, job);
      ASSERT_EQ(incremental, offline) << "diverged at sample " << i;
      ++advises;
    });
  }
  EXPECT_EQ(advises, kTotal - kSeed);
  EXPECT_EQ(slid.advises, advises);
  // The slid entry really was incremental: one initial build, no rebuild
  // churn while the pre-reserved storage grew in place.
  ASSERT_TRUE(slid.hist.has_value());
  EXPECT_EQ(slid.hist->full_rebuilds(), 1u);
}

TEST(ServeAdvisor, DifferentJobsShareOneSlidModel) {
  // Tenants with different job parameters share the model state; each
  // still gets exactly its own offline answer.
  const ZoneTraceSet traces = wavy_traces(400);
  ModelSpec spec;
  spec.history_span = kDay;
  ModelEntry shared(spec);

  JobParams tight = default_job();
  tight.remaining_time = 9 * kHour;
  JobParams loose = default_job();
  loose.remaining_time = 40 * kHour;
  JobParams pricey = default_job();
  pricey.on_demand_rate = Money::dollars(4.80);

  for (const JobParams& job : {tight, loose, pricey}) {
    const Advice got = compute_advice(shared, traces, job);
    const Advice want = advise_offline(spec, traces, job);
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(shared.advises, 3u);
}

TEST(ServeAdvisor, ApproxBytesScalesWithSpec) {
  ModelSpec small;
  small.max_states = 8;
  small.history_span = kDay;
  ModelSpec big;
  big.max_states = 64;
  big.history_span = 4 * kDay;
  EXPECT_LT(small.approx_bytes(3), big.approx_bytes(3));
  EXPECT_LT(big.approx_bytes(1), big.approx_bytes(3));
}

}  // namespace
}  // namespace redspot::serve
