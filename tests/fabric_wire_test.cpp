// Fabric wire-protocol codecs (fabric/wire.hpp): round-trips for all nine
// message types, totality under truncation and tag forgery, and the
// ChaosPlan's determinism and termination guarantees.
#include <gtest/gtest.h>

#include <string>

#include "common/frame.hpp"
#include "fabric/chaos.hpp"
#include "fabric/wire.hpp"

namespace redspot::fabric {
namespace {

TEST(Wire, HelloRoundTrip) {
  HelloMsg m;
  m.spec_hash = 0xABCDEF0123456789ULL;
  m.replications = 1000;
  m.num_shards = 64;
  m.num_configs = 3;
  m.pid = 4242;
  const auto got = decode_hello(encode_hello(m));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->protocol, kProtocolVersion);
  EXPECT_EQ(got->spec_hash, m.spec_hash);
  EXPECT_EQ(got->replications, m.replications);
  EXPECT_EQ(got->num_shards, m.num_shards);
  EXPECT_EQ(got->num_configs, m.num_configs);
  EXPECT_EQ(got->pid, m.pid);
}

TEST(Wire, WelcomeRejectRoundTrip) {
  const auto w = decode_welcome(encode_welcome({2, 77, 5}));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->protocol, 2u);
  EXPECT_EQ(w->spec_hash, 77u);
  EXPECT_EQ(w->worker, 5u);

  const auto r = decode_reject(encode_reject({"spec mismatch"}));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->reason, "spec mismatch");
}

TEST(Wire, LeaseRoundTripAndValidation) {
  const auto l = decode_lease(encode_lease({9, 4, 7, 2, 10'000}));
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->lease_id, 9u);
  EXPECT_EQ(l->shard_lo, 4u);
  EXPECT_EQ(l->shard_hi, 7u);
  EXPECT_EQ(l->attempt, 2u);
  EXPECT_EQ(l->duration_ms, 10'000u);

  // Empty and inverted ranges are rejected at decode.
  EXPECT_FALSE(decode_lease(encode_lease({9, 4, 4, 1, 1})).has_value());
  EXPECT_FALSE(decode_lease(encode_lease({9, 5, 4, 1, 1})).has_value());
}

TEST(Wire, PartialCarriesNestedRecordVerbatim) {
  std::string record = "\x01\x00\x00\x00nested-shard-record-bytes";
  record.push_back('\0');  // embedded NUL must survive
  record += "tail";
  const auto p = decode_partial(encode_partial({3, 12, record}));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->lease_id, 3u);
  EXPECT_EQ(p->shard, 12u);
  EXPECT_EQ(p->record, record);

  // An empty nested record is malformed.
  EXPECT_FALSE(decode_partial(encode_partial({3, 12, ""})).has_value());
}

TEST(Wire, AckHeartbeatDoneGoodbyeRoundTrip) {
  const auto a = decode_ack(encode_ack({8, true}));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->shard, 8u);
  EXPECT_TRUE(a->duplicate);

  const auto h = decode_heartbeat(encode_heartbeat({5, 120}));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->shard, 5u);
  EXPECT_EQ(h->replications_done, 120u);
  const auto idle =
      decode_heartbeat(encode_heartbeat({HeartbeatMsg::kNoShard, 0}));
  ASSERT_TRUE(idle.has_value());
  EXPECT_EQ(idle->shard, HeartbeatMsg::kNoShard);

  const auto d = decode_done(encode_done({64}));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->shards_total, 64u);

  const auto g = decode_goodbye(encode_goodbye({"shard threw"}));
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->reason, "shard threw");
}

TEST(Wire, MsgTypeIdentifiesAndRejects) {
  EXPECT_EQ(msg_type(encode_hello({})), MsgType::kHello);
  EXPECT_EQ(msg_type(encode_done({1})), MsgType::kDone);
  EXPECT_FALSE(msg_type("").has_value());
  EXPECT_FALSE(msg_type("abc").has_value());  // too short for the tag
  std::string forged;
  put_u32(forged, 999);  // unknown tag
  EXPECT_FALSE(msg_type(forged).has_value());
}

TEST(Wire, DecodersAreTotalOnTruncationAndCrossDecode) {
  const std::string msgs[] = {
      encode_hello({1, 2, 3, 4, 5, 6}), encode_welcome({1, 2, 3}),
      encode_reject({"r"}),             encode_lease({1, 0, 2, 1, 5}),
      encode_partial({1, 0, "rec"}),    encode_ack({0, false}),
      encode_heartbeat({0, 1}),         encode_done({2}),
      encode_goodbye({"g"}),
  };
  for (const std::string& m : msgs) {
    for (std::size_t cut = 0; cut < m.size(); ++cut) {
      const std::string_view t(m.data(), cut);
      // No truncation may crash, and none may decode as complete —
      // except Partial, whose trailing record is length-free; its
      // envelope guard (non-empty record) still rejects the bare prefix.
      decode_hello(t);
      decode_welcome(t);
      decode_reject(t);
      decode_lease(t);
      decode_partial(t);
      decode_ack(t);
      decode_heartbeat(t);
      decode_done(t);
      decode_goodbye(t);
    }
    // Decoding as the wrong type always fails (tag mismatch).
    if (msg_type(m) != MsgType::kHello) {
      EXPECT_FALSE(decode_hello(m));
    }
    if (msg_type(m) != MsgType::kLease) {
      EXPECT_FALSE(decode_lease(m));
    }
    if (msg_type(m) != MsgType::kDone) {
      EXPECT_FALSE(decode_done(m));
    }
  }
}

// --- chaos plan -------------------------------------------------------------

TEST(Chaos, DisabledPlanNeverKills) {
  const ChaosPlan off{};
  EXPECT_FALSE(off.enabled());
  for (std::uint64_t s = 0; s < 32; ++s)
    EXPECT_FALSE(should_kill(off, s, 1));
}

TEST(Chaos, DeterministicAndSeedSensitive) {
  ChaosPlan a;
  a.seed = 7;
  a.kill_rate = 0.5;
  ChaosPlan b = a;
  b.seed = 8;

  int diffs = 0;
  int kills = 0;
  for (std::uint64_t s = 0; s < 64; ++s) {
    for (std::uint64_t att = 1; att <= 2; ++att) {
      const bool ka = should_kill(a, s, att);
      EXPECT_EQ(ka, should_kill(a, s, att));  // pure function
      if (ka != should_kill(b, s, att)) ++diffs;
      if (ka) ++kills;
    }
  }
  EXPECT_GT(kills, 0);      // rate 0.5 over 128 draws fires
  EXPECT_LT(kills, 128);    // ...but not always
  EXPECT_GT(diffs, 0);      // different seed, different schedule
}

TEST(Chaos, AttemptsBeyondBudgetAlwaysSurvive) {
  ChaosPlan p;
  p.seed = 1;
  p.kill_rate = 1.0;  // would kill every attempt...
  p.kill_attempts = 2;
  EXPECT_TRUE(should_kill(p, 0, 1));
  EXPECT_TRUE(should_kill(p, 0, 2));
  // ...but the budget guarantees attempt 3 completes: chaos runs
  // terminate for every shard.
  for (std::uint64_t s = 0; s < 16; ++s)
    EXPECT_FALSE(should_kill(p, s, 3));
}

TEST(Chaos, ParsePlan) {
  auto p = parse_chaos_plan("7:0.5");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seed, 7u);
  EXPECT_DOUBLE_EQ(p->kill_rate, 0.5);
  EXPECT_EQ(p->kill_attempts, 2u);  // default

  p = parse_chaos_plan("11:1.0:1");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seed, 11u);
  EXPECT_DOUBLE_EQ(p->kill_rate, 1.0);
  EXPECT_EQ(p->kill_attempts, 1u);

  EXPECT_FALSE(parse_chaos_plan("").has_value());
  EXPECT_FALSE(parse_chaos_plan("7").has_value());
  EXPECT_FALSE(parse_chaos_plan(":0.5").has_value());
  EXPECT_FALSE(parse_chaos_plan("7:").has_value());
  EXPECT_FALSE(parse_chaos_plan("7:1.5").has_value());   // rate > 1
  EXPECT_FALSE(parse_chaos_plan("7:-0.1").has_value());  // rate < 0
  EXPECT_FALSE(parse_chaos_plan("7:0.5:").has_value());
  EXPECT_FALSE(parse_chaos_plan("x:0.5").has_value());
}

}  // namespace
}  // namespace redspot::fabric
