// The serve plane's network robustness layer: the ShedGate's degradation
// contract, the ServeClient's failure-mode taxonomy (reconnect-with-
// backoff vs idempotent resend vs ConnectionLost vs ServeError), and two
// headline sessions against the real in-process daemon:
//
//   * overload — a pipelined burst over a tiny shed limit: every accepted
//     request is answered exactly once, shed answers come from the
//     last-good model snapshot with the staleness marker set and are
//     bit-identical to the offline Adaptive decision for that snapshot,
//     and the queue depth the daemon admits stays bounded;
//   * chaos — a full feed/advise session through a seeded fault injector
//     (drops, torn frames, delays): every tick is applied exactly once
//     (ConnectionLost + as_of probing on the caller side), and the final
//     advice is bit-identical to the offline oracle over the full trace.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/frame.hpp"
#include "common/interrupt.hpp"
#include "common/transport/fault.hpp"
#include "common/transport/transport.hpp"
#include "serve/advisor.hpp"
#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "serve/shed.hpp"
#include "trace/zone_traces.hpp"

namespace redspot::serve {
namespace {

namespace fs = std::filesystem;

std::string tmp_sock(const std::string& name) {
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("redspot_snt_" + name + "_" +
                      std::to_string(::getpid()) + ".sock");
  fs::remove(p);
  return p.string();
}

/// Same deterministic 3-zone market the other serve suites use.
ZoneTraceSet wavy_traces(std::size_t steps) {
  std::vector<Money> a, b, c;
  for (std::size_t i = 0; i < steps; ++i) {
    a.push_back(Money::cents(27 + static_cast<std::int64_t>(i % 7)));
    b.push_back(Money::cents((i / 40) % 2 == 0 ? 31 : 210));
    c.push_back(Money::cents(150 + static_cast<std::int64_t>(i % 13)));
  }
  std::vector<PriceSeries> series;
  series.emplace_back(0, kPriceStep, std::move(a));
  series.emplace_back(0, kPriceStep, std::move(b));
  series.emplace_back(0, kPriceStep, std::move(c));
  return ZoneTraceSet({"za", "zb", "zc"}, std::move(series));
}

JobParams default_job() {
  JobParams job;
  job.remaining_compute = 8 * kHour;
  job.remaining_time = 16 * kHour;
  return job;
}

TraceInitMsg make_init(const ZoneTraceSet& full, std::size_t seed_samples,
                       std::uint64_t capacity) {
  TraceInitMsg init;
  init.start = full.start();
  init.step = full.step();
  init.capacity_samples = capacity;
  for (std::size_t z = 0; z < full.num_zones(); ++z) {
    init.zone_names.push_back(full.zone_name(z));
    std::vector<Money> seed;
    for (std::size_t i = 0; i < seed_samples; ++i)
      seed.push_back(full.zone(z).view().sample(i));
    init.samples.push_back(std::move(seed));
  }
  return init;
}

/// The real daemon on a background thread; joins (via the interrupt flag)
/// on destruction. Tests in this binary run the daemon one at a time.
struct Daemon {
  explicit Daemon(ServeOptions opt) {
    std::promise<std::string> bound_promise;
    opt.install_signal_handlers = false;
    opt.print_stats = false;
    opt.on_bound = [&](const std::string& ep) {
      bound_promise.set_value(ep);
    };
    reset_interrupt_flag();
    install_interrupt_handlers();
    thread_ = std::thread([opt] { run_server(opt); });
    bound = bound_promise.get_future().get();
  }

  ~Daemon() {
    ::raise(SIGTERM);  // sets the interrupt flag; the daemon drains
    thread_.join();
    reset_interrupt_flag();
  }

  std::string bound;

 private:
  std::thread thread_;
};

// --- ShedGate units ---------------------------------------------------------

Advice some_advice(SimTime as_of) {
  Advice a;
  a.as_of = as_of;
  a.bid = Money::cents(123);
  a.zones = {1};
  a.expected_uptime = 3600;
  return a;
}

TEST(ShedGate, LimitZeroNeverSheds) {
  ShedGate gate(0);
  const JobParams job = default_job();
  for (std::uint64_t depth : {0u, 1u, 1000u, 1000000u}) {
    EXPECT_EQ(gate.admit(7, job, depth).kind, ShedDecision::Kind::kAccept);
  }
  EXPECT_EQ(gate.stats().shed_stale, 0u);
  EXPECT_EQ(gate.stats().shed_rejected, 0u);
}

TEST(ShedGate, UnderTheLimitAccepts) {
  ShedGate gate(10);
  EXPECT_EQ(gate.admit(7, default_job(), 9).kind,
            ShedDecision::Kind::kAccept);
}

TEST(ShedGate, OverLimitWithoutSnapshotRejects) {
  ShedGate gate(2);
  const ShedDecision d = gate.admit(7, default_job(), 2);
  EXPECT_EQ(d.kind, ShedDecision::Kind::kReject);
  EXPECT_EQ(gate.stats().shed_rejected, 1u);
  EXPECT_EQ(gate.stats().shed_stale, 0u);
}

TEST(ShedGate, OverLimitWithSnapshotServesItStale) {
  ShedGate gate(2);
  const JobParams job = default_job();
  const Advice last_good = some_advice(4242);
  gate.record(7, job, last_good);
  const ShedDecision d = gate.admit(7, job, 5);
  EXPECT_EQ(d.kind, ShedDecision::Kind::kServeStale);
  EXPECT_EQ(d.advice, last_good);
  EXPECT_EQ(gate.stats().shed_stale, 1u);
}

TEST(ShedGate, SnapshotIsKeyedOnTheExactJobParams) {
  // A stale answer may only ever be a previous fresh answer to the SAME
  // question — a different job must not borrow it.
  ShedGate gate(1);
  const JobParams job = default_job();
  gate.record(7, job, some_advice(1));
  JobParams other = job;
  other.remaining_compute += 1;
  EXPECT_EQ(gate.admit(7, other, 9).kind, ShedDecision::Kind::kReject);
  EXPECT_EQ(gate.admit(8, job, 9).kind, ShedDecision::Kind::kReject);
  EXPECT_EQ(gate.admit(7, job, 9).kind, ShedDecision::Kind::kServeStale);
}

TEST(ShedGate, QueuePeakTracksTheHighWaterMark) {
  ShedGate gate(100);
  gate.admit(1, default_job(), 3);
  gate.admit(1, default_job(), 17);
  gate.admit(1, default_job(), 5);
  EXPECT_EQ(gate.stats().queue_peak, 17u);
}

// --- client failure taxonomy (scripted daemon) ------------------------------

/// Polls the non-blocking listener until the pending connection arrives.
std::unique_ptr<transport::Stream> accept_one(transport::Listener& l) {
  for (int i = 0; i < 5000; ++i) {
    if (auto s = l.accept()) return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return nullptr;
}

/// Reads one frame payload; nullopt on EOF.
std::optional<std::string> read_one(transport::Stream& s, FrameBuffer& buf) {
  std::string payload;
  for (;;) {
    switch (buf.next(&payload)) {
      case FrameStatus::kOk:
        return payload;
      case FrameStatus::kCorrupt:
        return std::nullopt;
      case FrameStatus::kNeedMore:
        break;
    }
    if (!s.read_into(buf)) return std::nullopt;
  }
}

TEST(ServeClientRetry, ReconnectsWithBackoffWhileDaemonUnreachable) {
  const std::string path = tmp_sock("late");
  std::thread daemon([&] {
    // The daemon shows up fashionably late: the client must sit in its
    // capped-backoff dial loop, not fail on the first ECONNREFUSED/ENOENT.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    auto listener = transport::listen(*transport::parse_endpoint(path));
    auto conn = accept_one(*listener);
    ASSERT_NE(conn, nullptr);
    FrameBuffer in;
    const auto req = read_one(*conn, in);
    ASSERT_TRUE(req.has_value());
    const auto reg = decode_register(*req);
    ASSERT_TRUE(reg.has_value());
    transport::send_frame(*conn,
                          encode_register_ok({reg->spec.spec_hash()}));
  });

  ServeClientOptions opt;
  opt.endpoint = path;
  opt.connect_timeout_ms = 10'000;
  ServeClient client(opt);
  const ModelSpec spec;
  EXPECT_EQ(client.register_spec(spec), spec.spec_hash());
  daemon.join();
}

TEST(ServeClientRetry, IdempotentAdviseIsResentAfterMidReplyDrop) {
  const std::string path = tmp_sock("redrive");
  auto listener = transport::listen(*transport::parse_endpoint(path));
  int requests_seen = 0;
  std::thread daemon([&] {
    {
      // First connection: take the request, hang up without answering.
      auto conn = accept_one(*listener);
      ASSERT_NE(conn, nullptr);
      FrameBuffer in;
      const auto req = read_one(*conn, in);
      ASSERT_TRUE(req.has_value());
      ASSERT_EQ(msg_type(*req), MsgType::kAdvise);
      ++requests_seen;
    }  // close: the client's recv sees EOF mid-request
    // Second connection: the transparent resend, answered properly.
    auto conn = accept_one(*listener);
    ASSERT_NE(conn, nullptr);
    FrameBuffer in;
    const auto req = read_one(*conn, in);
    ASSERT_TRUE(req.has_value());
    const auto adv = decode_advise(*req);
    ASSERT_TRUE(adv.has_value());
    ++requests_seen;
    transport::send_frame(
        *conn, encode_advice({adv->request_id, some_advice(777), false}));
  });

  ServeClient client(path);
  const AdviceMsg got = client.advise(7, 42, default_job());
  EXPECT_EQ(got.request_id, 7u);
  EXPECT_EQ(got.advice, some_advice(777));
  daemon.join();
  EXPECT_EQ(requests_seen, 2) << "the advise must have been resent";
}

TEST(ServeClientRetry, NonIdempotentTickThrowsConnectionLost) {
  const std::string path = tmp_sock("ticklost");
  auto listener = transport::listen(*transport::parse_endpoint(path));
  int requests_seen = 0;
  std::thread daemon([&] {
    auto conn = accept_one(*listener);
    ASSERT_NE(conn, nullptr);
    FrameBuffer in;
    const auto req = read_one(*conn, in);
    ASSERT_TRUE(req.has_value());
    ASSERT_EQ(msg_type(*req), MsgType::kTick);
    ++requests_seen;
    // Hang up with the tick's fate unknown to the client.
  });

  ServeClient client(path);
  // Resending could double-apply the sample: the client must surface the
  // ambiguity instead of guessing.
  EXPECT_THROW(client.tick({Money::cents(30)}), ConnectionLost);
  daemon.join();
  EXPECT_EQ(requests_seen, 1) << "a non-idempotent request must NOT be resent";
}

TEST(ServeClientRetry, ProtocolErrorsAreNeverRetried) {
  const std::string path = tmp_sock("protoerr");
  auto listener = transport::listen(*transport::parse_endpoint(path));
  int requests_seen = 0;
  std::thread daemon([&] {
    auto conn = accept_one(*listener);
    ASSERT_NE(conn, nullptr);
    FrameBuffer in;
    const auto req = read_one(*conn, in);
    ASSERT_TRUE(req.has_value());
    ++requests_seen;
    transport::send_frame(*conn, encode_error({9, "unknown spec"}));
    // Stay connected: the error is an answer, not a failure.
    read_one(*conn, in);
  });

  {
    ServeClient client(path);
    try {
      client.advise(9, 42, default_job());
      FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
      EXPECT_EQ(e.request_id(), 9u);
    }
  }  // closing our side unblocks the daemon thread's trailing read
  daemon.join();
  // The daemon saw exactly one request: errors answered by the daemon are
  // final, never redriven.
  EXPECT_EQ(requests_seen, 1);
}

TEST(ServeClientRetry, DuplicateDeliveredRepliesAreDiscarded) {
  const std::string path = tmp_sock("dupreply");
  auto listener = transport::listen(*transport::parse_endpoint(path));
  std::thread daemon([&] {
    auto conn = accept_one(*listener);
    ASSERT_NE(conn, nullptr);
    FrameBuffer in;
    auto req = read_one(*conn, in);
    ASSERT_TRUE(req.has_value());
    auto adv = decode_advise(*req);
    ASSERT_TRUE(adv.has_value());
    // The network double-delivers the first reply...
    const std::string reply =
        encode_advice({adv->request_id, some_advice(111), false});
    transport::send_frame(*conn, reply);
    transport::send_frame(*conn, reply);
    // ...and the second request is answered normally.
    req = read_one(*conn, in);
    ASSERT_TRUE(req.has_value());
    adv = decode_advise(*req);
    ASSERT_TRUE(adv.has_value());
    transport::send_frame(
        *conn, encode_advice({adv->request_id, some_advice(222), false}));
  });

  ServeClient client(path);
  EXPECT_EQ(client.advise(1, 42, default_job()).advice, some_advice(111));
  // The duplicate of reply #1 is still buffered; request #2 must get
  // reply #2, not the stale duplicate.
  const AdviceMsg second = client.advise(2, 42, default_job());
  EXPECT_EQ(second.request_id, 2u);
  EXPECT_EQ(second.advice, some_advice(222));
  daemon.join();
}

// --- overload: shed-to-stale with exactly-once delivery ---------------------

TEST(ServeOverload, ShedsToLastGoodSnapshotExactlyOnce) {
  const std::size_t kSeed = 300;
  const ZoneTraceSet full = wavy_traces(kSeed);

  ServeOptions opt;
  opt.endpoint = tmp_sock("overload");
  opt.threads = 1;          // slow consumer...
  opt.shed_queue_limit = 2; // ...tiny bound: the burst must overflow it
  Daemon daemon(opt);

  ServeClient client(daemon.bound);
  client.trace_init(make_init(full, kSeed, kSeed));
  ModelSpec spec;
  spec.history_span = kDay;
  const std::uint64_t hash = client.register_spec(spec);
  const JobParams job = default_job();

  // Prime the last-good snapshot with one fresh answer, and pin it to the
  // offline oracle: the snapshot a later stale answer serves is exact.
  const AdviceMsg primed = client.advise(1, hash, job);
  EXPECT_FALSE(primed.stale);
  EXPECT_EQ(primed.advice, advise_offline(spec, full, job));

  // Pipelined bursts, far more requests than a depth-2 queue admits.
  // Whether the queue actually backs up is a scheduling race (a fast pool
  // thread can drain as quickly as the poll loop submits), so flood in
  // bounded rounds until shedding provably happened — every round keeps
  // the exactly-once and bit-identity obligations either way.
  const std::size_t kBurst = 200;
  const std::size_t kMaxRounds = 20;
  std::set<std::uint64_t> ids;
  std::size_t stale = 0;
  for (std::size_t round = 0; round < kMaxRounds && stale == 0; ++round) {
    const std::uint64_t base = 1000 + round * kBurst;
    for (std::size_t i = 0; i < kBurst; ++i)
      client.advise_async(base + i, hash, job);
    for (std::size_t i = 0; i < kBurst; ++i) {
      const AdviceMsg reply = client.recv_advice();
      // Exactly-once: every reply is to one of ours, never twice.
      EXPECT_TRUE(ids.insert(reply.request_id).second)
          << "request " << reply.request_id << " answered twice";
      EXPECT_GE(reply.request_id, base);
      EXPECT_LT(reply.request_id, base + kBurst);
      // No ticks happened, so fresh and stale answers alike must equal
      // the primed snapshot bit-for-bit — degraded means older, never
      // wrong.
      EXPECT_EQ(reply.advice, primed.advice);
      if (reply.stale) ++stale;
    }
  }
  EXPECT_GE(stale, 1u) << "no 200-burst over a depth-2 queue ever shed";

  const StatsReplyMsg stats = client.stats();
  EXPECT_EQ(stats.shed_stale, stale);
  EXPECT_EQ(stats.shed_rejected, 0u);
  EXPECT_GE(stats.queue_peak, opt.shed_queue_limit);
}

TEST(ServeOverload, RejectsWhenNoSnapshotExists) {
  const std::size_t kSeed = 300;
  const ZoneTraceSet full = wavy_traces(kSeed);

  ServeOptions opt;
  opt.endpoint = tmp_sock("reject");
  opt.threads = 1;
  opt.shed_queue_limit = 2;
  Daemon daemon(opt);

  ServeClient client(daemon.bound);
  client.trace_init(make_init(full, kSeed, kSeed));
  ModelSpec spec;
  spec.history_span = kDay;
  const std::uint64_t hash = client.register_spec(spec);

  // Every request asks a never-before-seen question (the job params vary),
  // so no last-good snapshot can ever cover it: an over-limit admit must
  // reject with the honest degraded answer — Error "overloaded", not a
  // guess. Backing the queue up is a scheduling race (see above), so
  // flood in bounded rounds until a rejection provably happened.
  const std::size_t kBurst = 100;
  const std::size_t kMaxRounds = 20;
  std::set<std::uint64_t> ids;
  std::size_t answered = 0, rejected = 0;
  for (std::size_t round = 0; round < kMaxRounds && rejected == 0; ++round) {
    const std::uint64_t base = 2000 + round * kBurst;
    for (std::size_t i = 0; i < kBurst; ++i) {
      JobParams job = default_job();
      job.remaining_compute += static_cast<Duration>(base + i);
      client.advise_async(base + i, hash, job);
    }
    for (std::size_t i = 0; i < kBurst; ++i) {
      try {
        const AdviceMsg reply = client.recv_advice();
        EXPECT_TRUE(ids.insert(reply.request_id).second);
        ++answered;
      } catch (const ServeError& e) {
        EXPECT_TRUE(ids.insert(e.request_id()).second);
        EXPECT_STREQ(e.what(), "overloaded");
        ++rejected;
      }
    }
    EXPECT_EQ(ids.size(), answered + rejected) << "a reply went missing";
  }
  EXPECT_GE(rejected, 1u) << "no snapshotless burst was ever rejected";
  const StatsReplyMsg stats = client.stats();
  EXPECT_EQ(stats.shed_rejected, rejected);
  EXPECT_EQ(stats.shed_stale, 0u) << "stale answers without a snapshot";
}

// --- chaos session: exactly-once under injected network faults --------------

TEST(ServeChaos, SessionDeliversEveryAcceptedRequestExactlyOnce) {
  const std::size_t kSeed = 300;
  const std::size_t kTotal = 360;
  const ZoneTraceSet full = wavy_traces(kTotal);

  ServeOptions opt;
  opt.endpoint = tmp_sock("chaos");
  opt.threads = 2;
  opt.shed_queue_limit = 0;  // isolate the fault machinery from shedding
  Daemon daemon(opt);

  // Drops, torn frames and delays on every client write — but only after
  // setup: trace_init is not idempotent and a double-init is a protocol
  // error, so the injector arms once the session is established.
  transport::NetFaultPlan plan;
  plan.seed = 21;
  plan.rate = 0.2;
  plan.kinds = transport::fault_bit(transport::FaultKind::kDropConn) |
               transport::fault_bit(transport::FaultKind::kTruncate) |
               transport::fault_bit(transport::FaultKind::kDelay);
  plan.max_faults = 10;
  transport::NetFaultInjector injector(plan, /*armed=*/false);

  ServeClientOptions copt;
  copt.endpoint = daemon.bound;
  copt.net_fault = &injector;
  copt.max_resends = 32;  // the fault budget, not the resend cap, bounds us
  ServeClient client(copt);

  client.trace_init(make_init(full, kSeed, kTotal));
  ModelSpec spec;
  spec.history_span = kDay;
  const std::uint64_t hash = client.register_spec(spec);
  const JobParams job = default_job();
  injector.arm();

  std::uint64_t next_id = 10;
  std::vector<Money> prices(full.num_zones());
  for (std::size_t i = kSeed; i < kTotal; ++i) {
    for (std::size_t z = 0; z < full.num_zones(); ++z)
      prices[z] = full.zone(z).view().sample(i);
    const SimTime end_after =
        full.start() + full.step() * static_cast<Duration>(i + 1);
    // The advisor's clock: "now" is the instant the newest sample became
    // the current price, one step before the trace end.
    const SimTime as_of_applied = end_after - full.step();
    // Exactly-once ticks under chaos, from the caller's side: on
    // ConnectionLost the tick's fate is unknown, so probe the daemon's
    // as_of with an (idempotent) advise and resend only if it is missing.
    for (;;) {
      try {
        EXPECT_EQ(client.tick(prices), end_after);
        break;
      } catch (const ConnectionLost&) {
        const AdviceMsg probe = client.advise(next_id++, hash, job);
        if (probe.advice.as_of == as_of_applied) break;  // it landed
        ASSERT_EQ(probe.advice.as_of,
                  as_of_applied - full.step())  // it did not — resend is safe
            << "tick applied more or less than once";
      }
    }
    if ((i - kSeed) % 10 == 9) {
      const AdviceMsg adv = client.advise(next_id++, hash, job);
      EXPECT_EQ(adv.advice.as_of, as_of_applied);
    }
  }

  // Every tick landed exactly once iff the final advice is bit-identical
  // to the offline oracle over the full trace.
  const AdviceMsg final_adv = client.advise(next_id++, hash, job);
  EXPECT_FALSE(final_adv.stale);
  EXPECT_EQ(final_adv.advice, advise_offline(spec, full, job));
  EXPECT_GT(injector.injected(), 0u) << "the chaos session saw no faults";

  const StatsReplyMsg stats = client.stats();
  EXPECT_EQ(stats.ticks, static_cast<std::uint64_t>(kTotal - kSeed))
      << "a tick was double-applied or lost";
}

}  // namespace
}  // namespace redspot::serve
