// Kill-matrix integration test for the distributed sweep fabric.
//
// Forks the real redspot-fabric binary (REDSPOT_FABRIC_BIN) as one
// coordinator plus a worker fleet and proves the headline claim: the
// printed ensemble summary is bit-identical to a single-process
// `redspot-sim ensemble` run (REDSPOT_SIM_BIN) —
//
//   * for 1, 2 and 8 workers with no faults;
//   * with a ChaosPlan SIGKILLing workers mid-shard every round (the
//     harness respawns them until the coordinator finishes);
//   * with the coordinator itself SIGKILLed mid-run and restarted on its
//     journal (completed shards replay, never recompute);
//   * with zero workers ever connecting (in-process fallback, exit 0).
//
// SIGKILL everywhere: no handlers, no drains — the strongest crash model
// the lease/journal machinery promises to absorb.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace redspot {
namespace {

namespace fs = std::filesystem;

#ifndef REDSPOT_FABRIC_BIN
#error "REDSPOT_FABRIC_BIN must be defined to the redspot-fabric binary path"
#endif
#ifndef REDSPOT_SIM_BIN
#error "REDSPOT_SIM_BIN must be defined to the redspot-sim binary path"
#endif

/// The ensemble every process in the matrix must describe identically.
const std::vector<std::string> kSpecArgs = {
    "--policy", "periodic", "--zones",        "0",  "--seed", "77",
    "--replications", "36", "--shards", "12", "--no-cache"};

pid_t spawn(const std::vector<std::string>& args, const std::string& out_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) _exit(127);
  ::dup2(fd, STDOUT_FILENO);
  ::dup2(fd, STDERR_FILENO);
  ::close(fd);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

int wait_for(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

bool try_reap(pid_t pid, int* status) {
  return ::waitpid(pid, status, WNOHANG) == pid;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

std::size_t file_size(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::size_t>(st.st_size)
                                        : 0;
}

/// Canonical summary: provenance/diagnostic lines dropped, the sim CLI's
/// table title aligned with the fabric's. What remains is the
/// bit-identity contract — every number in the summary table.
std::string normalize(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("journal:", 0) == 0) continue;
    if (line.rfind("fabric:", 0) == 0) continue;
    if (line.rfind("interrupted:", 0) == 0) continue;
    if (line.rfind("[WARN]", 0) == 0) continue;
    const std::string sim_title = "== redspot_sim ensemble — ";
    if (line.rfind(sim_title, 0) == 0)
      line = "== ensemble — " + line.substr(sim_title.size());
    out << line << '\n';
  }
  return out.str();
}

std::vector<std::string> coordinator_args(const std::string& socket,
                                          const std::string& journal_dir) {
  std::vector<std::string> args = {REDSPOT_FABRIC_BIN, "coordinator",
                                   "--socket", socket};
  args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
  // Generous lease/heartbeat budgets: a SIGKILLed worker is detected via
  // EOF immediately, so these only have to not false-positive on slow
  // sanitizer machines.
  args.insert(args.end(), {"--lease-ms", "120000", "--heartbeat-timeout-ms",
                           "30000", "--fallback-wait-ms", "30000"});
  if (!journal_dir.empty()) args.insert(args.end(), {"--journal", journal_dir});
  return args;
}

std::vector<std::string> worker_args(const std::string& socket,
                                     const std::string& chaos) {
  std::vector<std::string> args = {REDSPOT_FABRIC_BIN, "worker", "--socket",
                                   socket};
  args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
  args.insert(args.end(), {"--give-up-ms", "120000"});
  if (!chaos.empty()) args.insert(args.end(), {"--chaos", chaos});
  return args;
}

struct FleetRun {
  std::string output;       ///< coordinator stdout+stderr
  int coordinator_status = 0;
  int worker_respawns = 0;
};

/// Runs one coordinator with `num_workers` workers, respawning any worker
/// that dies (chaos SIGKILLs itself) while the coordinator lives. If
/// `kill_coordinator_at` > 0, SIGKILLs the coordinator once the journal
/// file reaches that size, then restarts it with the same arguments.
FleetRun run_fleet(const fs::path& base, const std::string& tag,
                   int num_workers, const std::string& chaos,
                   const std::string& journal_dir = "",
                   std::size_t kill_coordinator_at = 0) {
  const std::string socket = (base / (tag + ".sock")).string();
  const std::string coord_out = (base / (tag + "_coord.txt")).string();
  const std::string journal_file =
      journal_dir.empty() ? "" : journal_dir + "/run.journal";

  FleetRun run;
  pid_t coord = spawn(coordinator_args(socket, journal_dir), coord_out);
  EXPECT_GT(coord, 0);

  // Give the coordinator a moment to bind before the fleet dials in; a
  // worker that races it just backs off and retries, so this is comfort,
  // not correctness.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<pid_t> workers(static_cast<std::size_t>(num_workers), -1);
  auto spawn_worker = [&](std::size_t slot) {
    const std::string out =
        (base / (tag + "_worker" + std::to_string(slot) + ".txt")).string();
    workers[slot] = spawn(worker_args(socket, chaos), out);
    EXPECT_GT(workers[slot], 0);
  };
  for (std::size_t i = 0; i < workers.size(); ++i) spawn_worker(i);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(10);
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      // Non-convergence is a hard failure; put the fleet down and let the
      // caller's status assertion report it.
      ADD_FAILURE() << tag << ": fleet did not converge; coordinator output:\n"
                    << slurp(coord_out);
      ::kill(coord, SIGKILL);
      run.coordinator_status = wait_for(coord);
      break;
    }

    int status = 0;
    if (try_reap(coord, &status)) {
      run.coordinator_status = status;
      break;
    }

    if (kill_coordinator_at > 0 && !journal_file.empty() &&
        file_size(journal_file) >= kill_coordinator_at) {
      // SIGKILL the coordinator mid-run, then restart it against the
      // surviving journal with identical arguments.
      ::kill(coord, SIGKILL);
      wait_for(coord);
      kill_coordinator_at = 0;  // once
      coord = spawn(coordinator_args(socket, journal_dir), coord_out);
      EXPECT_GT(coord, 0);
      continue;
    }

    // Respawn chaos casualties while the run is still going.
    for (std::size_t i = 0; i < workers.size(); ++i) {
      int wstatus = 0;
      if (workers[i] > 0 && try_reap(workers[i], &wstatus)) {
        workers[i] = -1;
        if (WIFSIGNALED(wstatus)) {
          ++run.worker_respawns;
          spawn_worker(i);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Fleet teardown: workers get Done and exit on their own; anything
  // still alive after a grace period is put down (not a test failure —
  // e.g. a worker mid-backoff when the run ended).
  const auto worker_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    while (workers[i] > 0) {
      int wstatus = 0;
      if (try_reap(workers[i], &wstatus)) {
        workers[i] = -1;
        break;
      }
      if (std::chrono::steady_clock::now() > worker_deadline) {
        ::kill(workers[i], SIGKILL);
        wait_for(workers[i]);
        workers[i] = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  run.output = slurp(coord_out);
  return run;
}

class FabricChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new fs::path(fs::path(::testing::TempDir()) / "redspot_fabric");
    fs::remove_all(*base_);
    fs::create_directories(*base_);

    // The single-process reference every fabric run must match.
    std::vector<std::string> args = {REDSPOT_SIM_BIN, "ensemble"};
    args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
    const std::string out = (*base_ / "reference.txt").string();
    const pid_t pid = spawn(args, out);
    const int status = wait_for(pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << slurp(out);
    reference_ = new std::string(normalize(slurp(out)));
    ASSERT_NE(reference_->find("policy"), std::string::npos) << *reference_;
  }

  static void TearDownTestSuite() {
    fs::remove_all(*base_);
    delete base_;
    delete reference_;
    base_ = nullptr;
    reference_ = nullptr;
  }

  static fs::path* base_;
  static std::string* reference_;
};

fs::path* FabricChaosTest::base_ = nullptr;
std::string* FabricChaosTest::reference_ = nullptr;

TEST_F(FabricChaosTest, NoFaultsBitIdenticalAcrossFleetSizes) {
  for (const int n : {1, 2, 8}) {
    const FleetRun run =
        run_fleet(*base_, "plain" + std::to_string(n), n, /*chaos=*/"");
    ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
                WEXITSTATUS(run.coordinator_status) == 0)
        << run.output;
    EXPECT_EQ(normalize(run.output), *reference_)
        << n << " workers diverged from the single-process reference";
    // The fleet, not the fallback, must have computed the shards.
    EXPECT_NE(run.output.find("fleet 12"), std::string::npos) << run.output;
  }
}

TEST_F(FabricChaosTest, WorkersKilledMidShardEveryRound) {
  // kill_rate 1.0 with a 1-attempt budget: every shard's FIRST compute is
  // SIGKILLed mid-shard; every reassignment (attempt 2) survives. The
  // harness respawns each casualty, so the run converges after ~12 kills
  // with reassignment traffic on every single shard.
  for (const int n : {1, 2, 8}) {
    const FleetRun run = run_fleet(*base_, "chaos" + std::to_string(n), n,
                                   /*chaos=*/"9:1.0:1");
    ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
                WEXITSTATUS(run.coordinator_status) == 0)
        << run.output;
    EXPECT_EQ(normalize(run.output), *reference_)
        << n << " chaos workers diverged from the reference";
    EXPECT_GT(run.worker_respawns, 0) << "chaos plan never killed anyone";
  }
}

TEST_F(FabricChaosTest, CoordinatorKilledAndResumedFromJournal) {
  const std::string journal_dir = (*base_ / "coordkill_journal").string();
  fs::create_directories(journal_dir);
  // Wait for a couple of shard records (a shard record is ~1 KiB; lease
  // records are tens of bytes) so the resume provably replays work.
  const FleetRun run =
      run_fleet(*base_, "coordkill", /*num_workers=*/2, /*chaos=*/"",
                journal_dir, /*kill_coordinator_at=*/2048);
  ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
              WEXITSTATUS(run.coordinator_status) == 0)
      << run.output;
  EXPECT_EQ(normalize(run.output), *reference_)
      << "resumed coordinator diverged from the reference";
  // The restarted coordinator must replay journaled shards, not redo them.
  EXPECT_NE(run.output.find("journal: replayed"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("journal: replayed 0 shards"), std::string::npos)
      << run.output;
}

TEST_F(FabricChaosTest, ZeroWorkersFallsBackInProcess) {
  const std::string socket = (*base_ / "fallback.sock").string();
  const std::string out = (*base_ / "fallback_coord.txt").string();
  std::vector<std::string> args = {REDSPOT_FABRIC_BIN, "coordinator",
                                   "--socket", socket};
  args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
  args.insert(args.end(), {"--fallback-wait-ms", "500"});

  const pid_t pid = spawn(args, out);
  ASSERT_GT(pid, 0);
  const int status = wait_for(pid);
  const std::string text = slurp(out);
  // Warning, exit 0, no hang — and the same bits as everyone else.
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << text;
  EXPECT_NE(text.find("in-process fallback"), std::string::npos) << text;
  EXPECT_EQ(normalize(text), *reference_);
}

}  // namespace
}  // namespace redspot
