// Kill-matrix integration test for the distributed sweep fabric.
//
// Forks the real redspot-fabric binary (REDSPOT_FABRIC_BIN) as one
// coordinator plus a worker fleet and proves the headline claim: the
// printed ensemble summary is bit-identical to a single-process
// `redspot-sim ensemble` run (REDSPOT_SIM_BIN) —
//
//   * for 1, 2 and 8 workers with no faults;
//   * with a ChaosPlan SIGKILLing workers mid-shard every round (the
//     harness respawns them until the coordinator finishes);
//   * with the coordinator itself SIGKILLed mid-run and restarted on its
//     journal (completed shards replay, never recompute);
//   * with zero workers ever connecting (in-process fallback, exit 0).
//
// SIGKILL everywhere: no handlers, no drains — the strongest crash model
// the lease/journal machinery promises to absorb. The TCP + network-fault
// half of the matrix lives in net_chaos_test.cpp; the process-spawning
// machinery is shared (tests/fleet_harness.hpp).
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet_harness.hpp"

namespace redspot {
namespace {

namespace fs = std::filesystem;
using fleettest::FleetRun;
using fleettest::normalize;
using fleettest::run_fleet;
using fleettest::slurp;
using fleettest::spawn;
using fleettest::wait_for;

#ifndef REDSPOT_FABRIC_BIN
#error "REDSPOT_FABRIC_BIN must be defined to the redspot-fabric binary path"
#endif
#ifndef REDSPOT_SIM_BIN
#error "REDSPOT_SIM_BIN must be defined to the redspot-sim binary path"
#endif

/// The ensemble every process in the matrix must describe identically.
const std::vector<std::string> kSpecArgs = {
    "--policy", "periodic", "--zones",        "0",  "--seed", "77",
    "--replications", "36", "--shards", "12", "--no-cache"};

std::vector<std::string> coordinator_args(const std::string& socket,
                                          const std::string& journal_dir) {
  std::vector<std::string> args = {REDSPOT_FABRIC_BIN, "coordinator",
                                   "--socket", socket};
  args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
  // Generous lease/heartbeat budgets: a SIGKILLed worker is detected via
  // EOF immediately, so these only have to not false-positive on slow
  // sanitizer machines.
  args.insert(args.end(), {"--lease-ms", "120000", "--heartbeat-timeout-ms",
                           "30000", "--fallback-wait-ms", "30000"});
  if (!journal_dir.empty()) args.insert(args.end(), {"--journal", journal_dir});
  return args;
}

std::vector<std::string> worker_args(const std::string& socket,
                                     const std::string& chaos) {
  std::vector<std::string> args = {REDSPOT_FABRIC_BIN, "worker", "--socket",
                                   socket};
  args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
  args.insert(args.end(), {"--give-up-ms", "120000"});
  if (!chaos.empty()) args.insert(args.end(), {"--chaos", chaos});
  return args;
}

/// Unix-socket fleet: the original kill matrix.
FleetRun run_unix_fleet(const fs::path& base, const std::string& tag,
                        int num_workers, const std::string& chaos,
                        const std::string& journal_dir = "",
                        std::size_t kill_coordinator_at = 0) {
  const std::string socket = (base / (tag + ".sock")).string();
  const std::string journal_file =
      journal_dir.empty() ? "" : journal_dir + "/run.journal";
  return run_fleet(
      base, tag, coordinator_args(socket, journal_dir),
      [&](std::size_t) { return worker_args(socket, chaos); }, num_workers,
      journal_file, kill_coordinator_at);
}

class FabricChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new fs::path(fs::path(::testing::TempDir()) / "redspot_fabric");
    fs::remove_all(*base_);
    fs::create_directories(*base_);

    // The single-process reference every fabric run must match.
    std::vector<std::string> args = {REDSPOT_SIM_BIN, "ensemble"};
    args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
    const std::string out = (*base_ / "reference.txt").string();
    const pid_t pid = spawn(args, out);
    const int status = wait_for(pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << slurp(out);
    reference_ = new std::string(normalize(slurp(out)));
    ASSERT_NE(reference_->find("policy"), std::string::npos) << *reference_;
  }

  static void TearDownTestSuite() {
    fs::remove_all(*base_);
    delete base_;
    delete reference_;
    base_ = nullptr;
    reference_ = nullptr;
  }

  static fs::path* base_;
  static std::string* reference_;
};

fs::path* FabricChaosTest::base_ = nullptr;
std::string* FabricChaosTest::reference_ = nullptr;

TEST_F(FabricChaosTest, NoFaultsBitIdenticalAcrossFleetSizes) {
  for (const int n : {1, 2, 8}) {
    const FleetRun run =
        run_unix_fleet(*base_, "plain" + std::to_string(n), n, /*chaos=*/"");
    ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
                WEXITSTATUS(run.coordinator_status) == 0)
        << run.output;
    EXPECT_EQ(normalize(run.output), *reference_)
        << n << " workers diverged from the single-process reference";
    // The fleet, not the fallback, must have computed the shards.
    EXPECT_NE(run.output.find("fleet 12"), std::string::npos) << run.output;
  }
}

TEST_F(FabricChaosTest, WorkersKilledMidShardEveryRound) {
  // kill_rate 1.0 with a 1-attempt budget: every shard's FIRST compute is
  // SIGKILLed mid-shard; every reassignment (attempt 2) survives. The
  // harness respawns each casualty, so the run converges after ~12 kills
  // with reassignment traffic on every single shard.
  for (const int n : {1, 2, 8}) {
    const FleetRun run = run_unix_fleet(*base_, "chaos" + std::to_string(n), n,
                                        /*chaos=*/"9:1.0:1");
    ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
                WEXITSTATUS(run.coordinator_status) == 0)
        << run.output;
    EXPECT_EQ(normalize(run.output), *reference_)
        << n << " chaos workers diverged from the reference";
    EXPECT_GT(run.worker_respawns, 0) << "chaos plan never killed anyone";
  }
}

TEST_F(FabricChaosTest, CoordinatorKilledAndResumedFromJournal) {
  const std::string journal_dir = (*base_ / "coordkill_journal").string();
  fs::create_directories(journal_dir);
  // Wait for a couple of shard records (a shard record is ~1 KiB; lease
  // records are tens of bytes) so the resume provably replays work.
  const FleetRun run =
      run_unix_fleet(*base_, "coordkill", /*num_workers=*/2, /*chaos=*/"",
                     journal_dir, /*kill_coordinator_at=*/2048);
  ASSERT_TRUE(WIFEXITED(run.coordinator_status) &&
              WEXITSTATUS(run.coordinator_status) == 0)
      << run.output;
  EXPECT_EQ(normalize(run.output), *reference_)
      << "resumed coordinator diverged from the reference";
  // The restarted coordinator must replay journaled shards, not redo them.
  EXPECT_NE(run.output.find("journal: replayed"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("journal: replayed 0 shards"), std::string::npos)
      << run.output;
}

TEST_F(FabricChaosTest, ZeroWorkersFallsBackInProcess) {
  const std::string socket = (*base_ / "fallback.sock").string();
  const std::string out = (*base_ / "fallback_coord.txt").string();
  std::vector<std::string> args = {REDSPOT_FABRIC_BIN, "coordinator",
                                   "--socket", socket};
  args.insert(args.end(), kSpecArgs.begin(), kSpecArgs.end());
  args.insert(args.end(), {"--fallback-wait-ms", "500"});

  const pid_t pid = spawn(args, out);
  ASSERT_GT(pid, 0);
  const int status = wait_for(pid);
  const std::string text = slurp(out);
  // Warning, exit 0, no hang — and the same bits as everyone else.
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << text;
  EXPECT_NE(text.find("in-process fallback"), std::string::npos) << text;
  EXPECT_EQ(normalize(text), *reference_);
}

}  // namespace
}  // namespace redspot
