// PriceView: the zero-copy window over a price series. Property tests pin
// the view against PriceSeries::window() materialization — same clamping,
// same samples, same scans — across randomized windows, plus the
// next_change edge semantics both paths now share.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "test_util.hpp"
#include "trace/price_series.hpp"
#include "trace/price_view.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::step_series;

PriceSeries random_series(Rng& rng, std::size_t max_len = 400) {
  const std::size_t len = 1 + rng.uniform_index(max_len);
  const SimTime start =
      static_cast<SimTime>(rng.uniform_index(50)) * kPriceStep;
  // A small price alphabet so constant runs and repeats are common.
  static const double kPrices[] = {0.27, 0.27, 0.30, 0.55, 0.81, 2.40};
  std::vector<Money> samples;
  samples.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    samples.push_back(Money::dollars(kPrices[rng.uniform_index(6)]));
  return PriceSeries(start, kPriceStep, std::move(samples));
}

// --- Basic accessors --------------------------------------------------------------

TEST(PriceView, MirrorsSeriesMetadata) {
  const PriceSeries s = step_series({{0.30, 3}, {0.55, 2}});
  const PriceView v = s.view();
  EXPECT_EQ(v.start(), s.start());
  EXPECT_EQ(v.end(), s.end());
  EXPECT_EQ(v.step(), s.step());
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.data(), s.samples().data());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(v.sample(i), s.sample(i));
    EXPECT_EQ(v.time_of(i), s.time_of(i));
  }
}

TEST(PriceView, AtAndIndexOfMatchSeries) {
  const PriceSeries s = step_series({{0.30, 4}, {0.81, 4}}, 10 * kPriceStep);
  const PriceView v = s.view();
  for (SimTime t = s.start(); t < s.end(); t += 97) {
    EXPECT_EQ(v.at(t), s.at(t));
    EXPECT_EQ(v.index_of(t), s.index_of(t));
  }
  // Boundary instants: first covered, last covered.
  EXPECT_EQ(v.at(s.start()), s.sample(0));
  EXPECT_EQ(v.at(s.end() - 1), s.sample(s.size() - 1));
}

TEST(PriceView, MaterializeRoundTrips) {
  const PriceSeries s = step_series({{0.27, 2}, {2.40, 3}}, kPriceStep);
  const PriceSeries copy = s.view().materialize();
  EXPECT_EQ(copy.start(), s.start());
  EXPECT_EQ(copy.step(), s.step());
  ASSERT_EQ(copy.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(copy.sample(i), s.sample(i));
  // The copy owns its storage.
  EXPECT_NE(copy.samples().data(), s.samples().data());
}

// --- next_change edge semantics ----------------------------------------------------

TEST(PriceView, NextChangeAtLastSampleIsNever) {
  const PriceSeries s = step_series({{0.30, 3}, {0.55, 1}});
  // Query from within the final sample: nothing after it can differ.
  EXPECT_EQ(s.next_change(s.time_of(3)), kNever);
  EXPECT_EQ(s.view().next_change(s.time_of(3)), kNever);
  EXPECT_EQ(s.next_change(s.end() - 1), kNever);
}

TEST(PriceView, NextChangeOnConstantTailIsNever) {
  const PriceSeries s = step_series({{0.55, 2}, {0.30, 6}});
  // From anywhere in the constant tail the price never changes again.
  for (SimTime t = s.time_of(2); t < s.end(); t += kPriceStep / 2)
    EXPECT_EQ(s.next_change(t), kNever) << "t=" << t;
}

TEST(PriceView, NextChangeOnConstantSeriesIsNever) {
  const PriceSeries s = constant_series(0.30, 8);
  EXPECT_EQ(s.next_change(s.start()), kNever);
  EXPECT_EQ(s.view().next_change(s.start()), kNever);
}

TEST(PriceView, NextChangeFindsFirstDifferingSample) {
  const PriceSeries s = step_series({{0.30, 4}, {0.81, 2}, {0.30, 2}});
  // From mid-first-segment: the change lands exactly on sample 4's start.
  EXPECT_EQ(s.next_change(s.start() + kPriceStep / 2), s.time_of(4));
  EXPECT_EQ(s.view().next_change(s.start() + kPriceStep / 2), s.time_of(4));
  // From the second segment: next change is the drop back at sample 6.
  EXPECT_EQ(s.next_change(s.time_of(4)), s.time_of(6));
  // Equal-price samples separated by a different one are distinct changes.
  EXPECT_EQ(s.next_change(s.time_of(6)), kNever);
}

TEST(PriceView, SubviewNextChangeIgnoresSamplesOutsideWindow) {
  const PriceSeries s = step_series({{0.30, 4}, {0.81, 4}});
  // Window over the constant prefix only: no change visible inside it.
  const PriceView v = s.view(s.start(), s.time_of(4));
  EXPECT_EQ(v.next_change(v.start()), kNever);
}

// --- Window slicing vs the owning materialization --------------------------------

void expect_view_matches_window(const PriceSeries& s, SimTime from,
                                SimTime to, Rng& rng) {
  const PriceSeries owned = s.window(from, to);
  const PriceView v = s.view(from, to);
  ASSERT_EQ(v.start(), owned.start()) << "[" << from << "," << to << ")";
  ASSERT_EQ(v.end(), owned.end());
  ASSERT_EQ(v.step(), owned.step());
  ASSERT_EQ(v.size(), owned.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_EQ(v.sample(i), owned.sample(i)) << "i=" << i;
  EXPECT_EQ(v.min_price(), owned.min_price());
  EXPECT_EQ(v.max_price(), owned.max_price());
  const std::vector<double> vd = v.to_doubles();
  const std::vector<double> od = owned.to_doubles();
  ASSERT_EQ(vd, od);
  for (int k = 0; k < 8; ++k) {
    const SimTime t =
        owned.start() + static_cast<SimTime>(rng.uniform_index(
                            static_cast<std::uint64_t>(
                                owned.end() - owned.start())));
    ASSERT_EQ(v.at(t), owned.at(t)) << "t=" << t;
    ASSERT_EQ(v.next_change(t), owned.next_change(t)) << "t=" << t;
  }
}

TEST(PriceViewProperty, RandomWindowsAgreeWithMaterialization) {
  Rng rng(20140623);
  for (int iter = 0; iter < 200; ++iter) {
    const PriceSeries s = random_series(rng);
    for (int w = 0; w < 10; ++w) {
      // Raw bounds may stick out past the series on either side; both
      // paths clamp identically. Keep only combinations that survive the
      // clamp (to > start, from < end, clamped from < clamped to).
      const SimTime lo = s.start() - 2 * kPriceStep +
                         static_cast<SimTime>(rng.uniform_index(
                             static_cast<std::uint64_t>(s.end() - s.start()) +
                             2 * static_cast<std::uint64_t>(kPriceStep)));
      const SimTime hi =
          lo + 1 + static_cast<SimTime>(rng.uniform_index(
                       static_cast<std::uint64_t>(s.end() - s.start()) +
                       2 * static_cast<std::uint64_t>(kPriceStep)));
      if (std::max(lo, s.start()) >= std::min(hi, s.end())) continue;
      expect_view_matches_window(s, lo, hi, rng);
    }
  }
}

TEST(PriceViewProperty, SubviewOfSubviewMatchesDirectWindow) {
  Rng rng(77);
  const PriceSeries s = random_series(rng, 300);
  const PriceView whole = s.view();
  for (int k = 0; k < 50; ++k) {
    const SimTime a = s.start() + static_cast<SimTime>(rng.uniform_index(
                                      static_cast<std::uint64_t>(
                                          s.end() - s.start() - 1)));
    const SimTime b = a + 1 + static_cast<SimTime>(rng.uniform_index(
                                  static_cast<std::uint64_t>(s.end() - a)));
    const PriceView outer = whole.window(a, b);
    // Shrink again from inside the outer view.
    const SimTime c = outer.start() +
                      static_cast<SimTime>(rng.uniform_index(
                          static_cast<std::uint64_t>(outer.end() -
                                                     outer.start() - 1)));
    const PriceView inner = outer.window(c, outer.end());
    const PriceView direct = s.view(c, outer.end());
    ASSERT_EQ(inner.start(), direct.start());
    ASSERT_EQ(inner.size(), direct.size());
    ASSERT_EQ(inner.data(), direct.data());
  }
}

TEST(PriceView, WindowEdgesClampAndAlignOutward) {
  const PriceSeries s = step_series({{0.30, 2}, {0.81, 2}}, 4 * kPriceStep);
  // Bounds far outside the series clamp to the whole view.
  const PriceView all = s.view(0, s.end() + kDay);
  EXPECT_EQ(all.start(), s.start());
  EXPECT_EQ(all.size(), s.size());
  // A window interior to one sample keeps that sample (outward alignment).
  const PriceView one = s.view(s.start() + 10, s.start() + 20);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.start(), s.start());
  EXPECT_EQ(one.sample(0), s.sample(0));
  // `to` exactly on a grid line excludes the sample that starts there.
  const PriceView half = s.view(s.start(), s.time_of(2));
  EXPECT_EQ(half.size(), 2u);
  EXPECT_EQ(half.max_price(), Money::dollars(0.30));
}

TEST(PriceView, MinMaxAtPartialHistoryStart) {
  // The engine's day-one case: the trailing window clamps to a prefix that
  // excludes later (cheaper/pricier) samples.
  const PriceSeries s = step_series({{0.90, 1}, {0.20, 5}, {0.70, 6}});
  EXPECT_EQ(s.view(s.start(), s.start() + 1).min_price(),
            Money::dollars(0.90));
  EXPECT_EQ(s.view(s.start(), s.time_of(2)).min_price(),
            Money::dollars(0.20));
  EXPECT_EQ(s.view(s.time_of(1), s.end()).max_price(), Money::dollars(0.70));
  EXPECT_EQ(s.min_price(), Money::dollars(0.20));
  EXPECT_EQ(s.max_price(), Money::dollars(0.90));
}

}  // namespace
}  // namespace redspot
