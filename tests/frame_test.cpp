// The shared frame codec (common/frame.hpp): byte primitives, frame
// encode/peek, the streaming FrameBuffer, and fuzz-style corruption —
// truncation, bit flips, forged lengths — driven through BOTH consumers
// of the format: the FrameBuffer a fabric connection reads, and a
// RunJournal file reopened after the damage. The shared invariant: a
// frame yields its exact payload bytes or is rejected whole; neither
// consumer ever yields a corrupted payload.
// A third consumer rides along since the transport layer landed: frames
// sent over a real TCP loopback pair, split at every byte boundary by the
// sender and torn at every byte boundary by a FaultyStream — short reads
// and torn frames must reassemble or park on kNeedMore, never corrupt.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/frame.hpp"
#include "common/random.hpp"
#include "common/transport/fault.hpp"
#include "common/transport/transport.hpp"
#include "journal/journal.hpp"

namespace redspot {
namespace {

namespace fs = std::filesystem;

std::string tmp_path(const std::string& name) {
  const fs::path p = fs::path(::testing::TempDir()) / ("redspot_" + name);
  fs::remove(p);
  return p.string();
}

// --- byte primitives --------------------------------------------------------

TEST(ByteCodec, RoundTripsEveryPrimitive) {
  std::string buf;
  put_u8(buf, 0xAB);
  put_u32(buf, 0xDEADBEEF);
  put_u64(buf, 0x0123456789ABCDEFULL);
  put_i32(buf, -42);
  put_i64(buf, INT64_MIN);
  put_str(buf, "hello");

  ByteReader in(buf);
  std::uint8_t u8v = 0;
  std::uint32_t u32v = 0;
  std::uint64_t u64v = 0;
  std::int32_t i32v = 0;
  std::int64_t i64v = 0;
  std::string s;
  EXPECT_TRUE(in.u8(&u8v));
  EXPECT_TRUE(in.u32(&u32v));
  EXPECT_TRUE(in.u64(&u64v));
  EXPECT_TRUE(in.i32(&i32v));
  EXPECT_TRUE(in.i64(&i64v));
  EXPECT_TRUE(in.str(&s));
  EXPECT_TRUE(in.done());
  EXPECT_EQ(u8v, 0xAB);
  EXPECT_EQ(u32v, 0xDEADBEEFu);
  EXPECT_EQ(u64v, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i32v, -42);
  EXPECT_EQ(i64v, INT64_MIN);
  EXPECT_EQ(s, "hello");
}

TEST(ByteCodec, ReaderIsTotalOnEveryTruncation) {
  std::string buf;
  put_u64(buf, 7);
  put_str(buf, "payload");
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader in(std::string_view(buf).substr(0, cut));
    std::uint64_t v = 0;
    std::string s;
    // Either read can fail, but nothing may crash or over-read.
    if (in.u64(&v)) in.str(&s);
    EXPECT_LE(in.remaining(), cut);
  }
}

TEST(ByteCodec, StrRejectsForgedLength) {
  std::string buf;
  put_u32(buf, 1000);  // claims 1000 bytes...
  buf += "short";      // ...delivers 5
  ByteReader in(buf);
  std::string s;
  EXPECT_FALSE(in.str(&s));
}

// --- frame codec ------------------------------------------------------------

TEST(FrameCodec, PeekRoundTrip) {
  const std::string payload = "the quick brown fox";
  const std::string frame = encode_frame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());

  std::string_view got;
  std::size_t frame_size = 0;
  EXPECT_EQ(peek_frame(frame, &got, &frame_size), FrameStatus::kOk);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(frame_size, frame.size());
}

TEST(FrameCodec, EveryTruncationReadsAsNeedMore) {
  const std::string frame = encode_frame("abcdefgh");
  std::string_view payload;
  std::size_t frame_size = 0;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_EQ(peek_frame(std::string_view(frame).substr(0, cut), &payload,
                         &frame_size),
              FrameStatus::kNeedMore)
        << "cut=" << cut;
  }
}

TEST(FrameCodec, EveryBitFlipReadsAsCorruptOrShape) {
  const std::string payload = "bit-flip resistance";
  const std::string frame = encode_frame(payload);
  std::string_view got;
  std::size_t frame_size = 0;
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      const FrameStatus status = peek_frame(damaged, &got, &frame_size);
      // A flipped length byte may legally read as kNeedMore (the frame
      // "grew"); everything else must be caught by the checksum. The one
      // thing that must never happen is kOk with altered bytes.
      if (status == FrameStatus::kOk) {
        EXPECT_EQ(got, payload);
        ADD_FAILURE() << "flip byte " << byte << " bit " << bit
                      << " yielded kOk";
      }
    }
  }
}

TEST(FrameCodec, ForgedLengthIsCorruptionNotAllocation) {
  std::string frame = encode_frame("x");
  // Forge the length field to 4 GiB-ish; the checksum never gets a say
  // because the length guard fires first — and no reader should sit
  // waiting for bytes that will never come.
  frame[0] = '\xFF';
  frame[1] = '\xFF';
  frame[2] = '\xFF';
  frame[3] = '\x7F';
  std::string_view payload;
  std::size_t frame_size = 0;
  EXPECT_EQ(peek_frame(frame, &payload, &frame_size), FrameStatus::kCorrupt);
}

// --- FrameBuffer (the fabric-connection consumer) ---------------------------

TEST(FrameBuffer, ReassemblesFramesFromSingleByteDrip) {
  const std::vector<std::string> payloads{"alpha", "", "gamma-gamma"};
  std::string stream;
  for (const std::string& p : payloads) append_frame(stream, p);

  FrameBuffer buf;
  std::vector<std::string> got;
  std::string payload;
  for (char c : stream) {
    buf.append(&c, 1);
    while (buf.next(&payload) == FrameStatus::kOk) got.push_back(payload);
  }
  EXPECT_EQ(got, payloads);
  EXPECT_FALSE(buf.corrupt());
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(FrameBuffer, CorruptionIsSticky) {
  std::string stream;
  append_frame(stream, "good");
  append_frame(stream, "evil");
  append_frame(stream, "never-seen");
  stream[kFrameHeaderSize + 4 + kFrameHeaderSize] ^= 0x01;  // corrupt "evil"

  FrameBuffer buf;
  buf.append(stream);
  std::string payload;
  ASSERT_EQ(buf.next(&payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "good");
  EXPECT_EQ(buf.next(&payload), FrameStatus::kCorrupt);
  EXPECT_TRUE(buf.corrupt());
  // No resynchronization: the stream is dead for good.
  buf.append(encode_frame("fresh"));
  EXPECT_EQ(buf.next(&payload), FrameStatus::kCorrupt);
}

// --- randomized cross-consumer fuzz ----------------------------------------

/// Writes `payloads` as a journal file (magic + frames) at `path`.
void write_journal_file(const std::string& path,
                        const std::vector<std::string>& payloads,
                        std::size_t truncate_to = SIZE_MAX) {
  std::string blob(RunJournal::kMagic, sizeof(RunJournal::kMagic));
  for (const std::string& p : payloads) append_frame(blob, p);
  if (truncate_to < blob.size()) blob.resize(truncate_to);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

TEST(FrameFuzz, BothConsumersAgreeUnderRandomDamage) {
  Rng rng(20260808);
  for (int iter = 0; iter < 50; ++iter) {
    // Random batch of payloads.
    std::vector<std::string> payloads(1 + rng.uniform_index(5));
    for (std::string& p : payloads) {
      p.resize(rng.uniform_index(200));
      for (char& c : p) c = static_cast<char>(rng.uniform_index(256));
    }
    std::string stream;
    for (const std::string& p : payloads) append_frame(stream, p);

    // Random damage: truncate the tail, or flip one bit.
    const bool truncate = rng.uniform() < 0.5;
    std::size_t cut = stream.size();
    std::size_t flip_byte = SIZE_MAX;
    if (truncate && !stream.empty()) {
      cut = rng.uniform_index(stream.size());
      stream.resize(cut);
    } else if (!stream.empty()) {
      flip_byte = rng.uniform_index(stream.size());
      stream[flip_byte] =
          static_cast<char>(stream[flip_byte] ^ (1u << rng.uniform_index(8)));
    }

    // Consumer 1: the fabric's FrameBuffer.
    FrameBuffer buf;
    buf.append(stream);
    std::vector<std::string> wire_got;
    std::string payload;
    while (buf.next(&payload) == FrameStatus::kOk) wire_got.push_back(payload);

    // Consumer 2: a journal file with the identical frame bytes.
    const std::string path =
        tmp_path("fuzz_" + std::to_string(iter) + ".journal");
    {
      std::string blob(RunJournal::kMagic, sizeof(RunJournal::kMagic));
      blob += stream;
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    RunJournal journal(path);

    // The journal stops at the first damaged frame — its intact prefix
    // must equal the wire consumer's decoded prefix, and every recovered
    // payload must be byte-exact.
    ASSERT_EQ(journal.records().size(), wire_got.size()) << "iter " << iter;
    for (std::size_t i = 0; i < wire_got.size(); ++i) {
      EXPECT_EQ(journal.records()[i], wire_got[i]);
      EXPECT_EQ(wire_got[i], payloads[i]);
    }
    fs::remove(path);
  }
}

TEST(FrameFuzz, JournalRecoversExactPrefixOnEveryTruncationPoint) {
  const std::vector<std::string> payloads{"first-record", "second-record",
                                          "third-record"};
  std::string frames;
  std::vector<std::size_t> ends;  // frame end offsets within `frames`
  for (const std::string& p : payloads) {
    append_frame(frames, p);
    ends.push_back(frames.size());
  }
  for (std::size_t cut = 0; cut <= frames.size(); ++cut) {
    const std::string path = tmp_path("trunc.journal");
    write_journal_file(path, payloads, sizeof(RunJournal::kMagic) + cut);
    RunJournal journal(path);
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    EXPECT_EQ(journal.records().size(), expect) << "cut=" << cut;
    // A torn tail exists iff the cut lands strictly inside a frame —
    // i.e. past the last intact frame boundary (offset 0 counts as one).
    const std::size_t last_boundary = expect > 0 ? ends[expect - 1] : 0;
    EXPECT_EQ(journal.open_stats().recovered_tail, cut > last_boundary)
        << "cut=" << cut;
    fs::remove(path);
  }
}

// --- frames over a real transport -------------------------------------------

/// A connected TCP loopback (listener-side, dialer-side) pair.
std::pair<std::unique_ptr<transport::Stream>, std::unique_ptr<transport::Stream>>
tcp_pair() {
  const auto ep = transport::parse_endpoint("tcp:127.0.0.1:0");
  auto listener = transport::listen(*ep);
  auto dialer = transport::connect(listener->local_endpoint());
  EXPECT_NE(dialer, nullptr);
  std::unique_ptr<transport::Stream> accepted;
  for (int i = 0; i < 2000 && !accepted; ++i) {
    accepted = listener->accept();
    if (!accepted)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(accepted, nullptr);
  return {std::move(accepted), std::move(dialer)};
}

/// Drains the stream until `buf` yields a frame, EOF, or corruption.
FrameStatus pump_one(transport::Stream& s, FrameBuffer& buf,
                     std::string* payload, bool* eof) {
  *eof = false;
  for (;;) {
    const FrameStatus status = buf.next(payload);
    if (status != FrameStatus::kNeedMore) return status;
    if (!s.read_into(buf)) {
      *eof = true;
      return FrameStatus::kNeedMore;
    }
  }
}

TEST(FrameTransport, TcpShortWritesSplitAtEveryByteBoundary) {
  const std::string payload = "short-write resistance";
  const std::string frame = encode_frame(payload);
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    auto [server, client] = tcp_pair();
    // Two separate write() calls guarantee the receiver can observe a
    // short read at this exact boundary (TCP may still coalesce — the
    // contract is that NO split ever corrupts).
    client->write_all(std::string_view(frame).substr(0, cut));
    client->write_all(std::string_view(frame).substr(cut));
    FrameBuffer buf;
    std::string got;
    bool eof = false;
    ASSERT_EQ(pump_one(*server, buf, &got, &eof), FrameStatus::kOk)
        << "cut=" << cut;
    EXPECT_EQ(got, payload);
  }
}

TEST(FrameTransport, TcpSingleByteDripReassembles) {
  const std::string payload = "one byte at a time";
  const std::string frame = encode_frame(payload);
  auto [server, client] = tcp_pair();
  FrameBuffer buf;
  std::string got;
  for (char c : frame) client->write_all(std::string_view(&c, 1));
  bool eof = false;
  ASSERT_EQ(pump_one(*server, buf, &got, &eof), FrameStatus::kOk);
  EXPECT_EQ(got, payload);
}

TEST(FrameTransport, FaultyStreamTruncationSweepNeverCorrupts) {
  // Tear the frame at every byte boundary: the receiver must see the
  // intact prefix as kNeedMore (a torn frame is indistinguishable from a
  // slow one) and then clean EOF — kCorrupt would mean the codec accepted
  // damaged bytes.
  const std::string payload = "torn-frame sweep";
  const std::string frame = encode_frame(payload);
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    auto [server, client] = tcp_pair();
    transport::FaultyStream faulty(
        std::move(client),
        [cut](std::uint64_t, std::size_t) {
          transport::FaultAction a;
          a.kind = transport::FaultKind::kTruncate;
          a.truncate_at = cut;
          return std::optional<transport::FaultAction>(a);
        });
    EXPECT_THROW(faulty.write_all(frame), std::runtime_error) << "cut=" << cut;
    FrameBuffer buf;
    std::string got;
    bool eof = false;
    const FrameStatus status = pump_one(*server, buf, &got, &eof);
    if (cut == frame.size()) {
      // truncate_at == len delivered the whole frame before the cut.
      EXPECT_EQ(status, FrameStatus::kOk) << "cut=" << cut;
      EXPECT_EQ(got, payload);
    } else {
      EXPECT_EQ(status, FrameStatus::kNeedMore) << "cut=" << cut;
      EXPECT_TRUE(eof) << "cut=" << cut;
      EXPECT_FALSE(buf.corrupt()) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace redspot
