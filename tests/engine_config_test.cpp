// Tests of the engine's run-time reconfiguration rules (Section 7.1):
//   (1) a new permutation may be adopted when a zone was terminated;
//   (2) disruptive changes wait for the billing hour to end (with a
//       protective checkpoint at cycle-end - t_c);
//   (3) non-disruptive changes (same bid, active zones kept) apply
//       immediately at a price tick.
// A scripted Strategy drives the engine deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/engine.hpp"
#include "test_util.hpp"

namespace redspot {
namespace {

using testing::constant_series;
using testing::make_market;
using testing::single_zone;
using testing::small_experiment;
using testing::step_series;

/// Strategy scripted as: initial config, then from `switch_at` onward
/// request `next` at every decision point.
class ScriptedStrategy final : public Strategy {
 public:
  ScriptedStrategy(EngineConfig initial, EngineConfig next,
                   SimTime switch_at)
      : initial_(std::move(initial)),
        next_(std::move(next)),
        switch_at_(switch_at) {}

  EngineConfig initial(const EngineView&) override { return initial_; }

  std::optional<EngineConfig> reconsider(const EngineView& view,
                                         DecisionPoint point) override {
    last_point_ = point;
    ++decisions_;
    if (view.now() < switch_at_) return std::nullopt;
    return next_;
  }

  bool dynamic() const override { return true; }

  int decisions_ = 0;
  DecisionPoint last_point_ = DecisionPoint::kStart;

 private:
  EngineConfig initial_;
  EngineConfig next_;
  SimTime switch_at_;
};

TEST(EngineConfig, PolicySwitchAppliesImmediatelyAtTick) {
  // Same bid, same zone, different policy: rule 3 — adopt mid-hour.
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * 12)));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  auto periodic = make_policy(PolicyKind::kPeriodic);
  auto markov = make_policy(PolicyKind::kMarkovDaly);
  ScriptedStrategy strategy(
      EngineConfig{Money::cents(81), {0}, periodic.get()},
      EngineConfig{Money::cents(81), {0}, markov.get()},
      /*switch_at=*/e.start + 30 * kMinute);
  EngineOptions options;
  options.record_timeline = true;
  Engine engine(market, e, strategy, options);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  ASSERT_GE(r.config_changes, 1);
  SimTime change_at = kNever;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.kind == TimelineKind::kConfigChange) {
      change_at = ev.time;
      break;
    }
  }
  // Applied at the first decision point at/after 30 min — within the
  // first billing hour, because it is non-disruptive.
  EXPECT_EQ(change_at, e.start + 30 * kMinute);
  // No instance was terminated for it.
  EXPECT_EQ(r.spot_cost, Money::dollars(0.30 * 3));  // 2h + ckpt = 3 hours
}

TEST(EngineConfig, ZoneAdditionIsNonDisruptive) {
  // Adding zone 1 keeps zone 0 running; zone 1 joins at the next commit.
  const SpotMarket market = make_market(testing::zones({
      constant_series(0.30, 24 * 12),
      constant_series(0.40, 24 * 12),
  }));
  const Experiment e = small_experiment(3.0, 0.5, 300);
  auto policy = make_policy(PolicyKind::kPeriodic);
  ScriptedStrategy strategy(
      EngineConfig{Money::cents(81), {0}, policy.get()},
      EngineConfig{Money::cents(81), {0, 1}, policy.get()},
      e.start + 30 * kMinute);
  EngineOptions options;
  options.record_timeline = true;
  Engine engine(market, e, strategy, options);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  // Zone 1 must have started (billed) at some point after the change.
  bool zone1_ran = false;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.zone == 1 && ev.kind == TimelineKind::kInstanceRunning)
      zone1_ran = true;
  }
  EXPECT_TRUE(zone1_ran);
  // And zone 0 was never user-terminated mid-run (only at completion).
  int zone0_user_terms = 0;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.zone == 0 && ev.kind == TimelineKind::kUserTerminated)
      ++zone0_user_terms;
  }
  EXPECT_EQ(zone0_user_terms, 1);  // the completion cleanup
}

TEST(EngineConfig, BidChangeWaitsForBoundaryWithProtectiveCheckpoint) {
  // A bid change is disruptive (fixed-bid rule): requested at 30 min, it
  // must not apply until the billing hour ends, and the engine must
  // checkpoint at (boundary - t_c) so no progress is lost.
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * 12)));
  const Experiment e = small_experiment(2.0, 1.0, 300);
  auto policy = make_policy(PolicyKind::kMarkovDaly);
  ScriptedStrategy strategy(
      EngineConfig{Money::cents(81), {0}, policy.get()},
      EngineConfig{Money::dollars(1.21), {0}, policy.get()},
      e.start + 30 * kMinute);
  EngineOptions options;
  options.record_timeline = true;
  options.record_line_items = true;
  Engine engine(market, e, strategy, options);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);

  SimTime change_at = kNever;
  SimTime protective_ckpt = kNever;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.kind == TimelineKind::kConfigChange && change_at == kNever)
      change_at = ev.time;
    if (ev.kind == TimelineKind::kCheckpointStart &&
        protective_ckpt == kNever)
      protective_ckpt = ev.time;
  }
  ASSERT_NE(change_at, kNever);
  EXPECT_EQ(change_at, e.start + kHour);            // at the boundary
  EXPECT_EQ(protective_ckpt, e.start + kHour - 300);  // t_c before it
  // The old instance stopped cleanly at the boundary: exactly one
  // completed hour charged for it, no mid-cycle user partial.
  EXPECT_EQ(r.line_items[0].kind, LineItem::Kind::kSpotHour);
  // After the switch the zone re-queues and restarts from the protective
  // checkpoint.
  EXPECT_GE(r.restarts, 1);
}

TEST(EngineConfig, TerminationIsADecisionPoint) {
  // Zone 0 dies mid-cycle at t=30min; the strategy switches to zone 1 at
  // that decision point (rule 1) even though the bid changes — no need to
  // wait for a billing boundary.
  const SpotMarket market = make_market(testing::zones({
      step_series({{0.30, 6}, {2.00, 24 * 12 - 6}}),
      constant_series(0.40, 24 * 12),
  }));
  const Experiment e = small_experiment(2.0, 1.0, 300);
  auto policy = make_policy(PolicyKind::kPeriodic);
  ScriptedStrategy strategy(
      EngineConfig{Money::cents(81), {0}, policy.get()},
      EngineConfig{Money::cents(61), {1}, policy.get()},
      e.start + 30 * kMinute);
  EngineOptions options;
  options.record_timeline = true;
  Engine engine(market, e, strategy, options);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.out_of_bid_terminations, 1);
  SimTime change_at = kNever;
  for (const TimelineEvent& ev : r.timeline) {
    if (ev.kind == TimelineKind::kConfigChange) {
      change_at = ev.time;
      break;
    }
  }
  // The change applies at the very tick that killed zone 0.
  EXPECT_EQ(change_at, e.start + 30 * kMinute);
  EXPECT_FALSE(r.switched_to_on_demand);
}

TEST(EngineConfig, StrategyConsultedAtEveryTick) {
  const SpotMarket market =
      make_market(single_zone(constant_series(0.30, 24 * 12)));
  const Experiment e = small_experiment(1.0, 0.5, 300);
  auto policy = make_policy(PolicyKind::kPeriodic);
  ScriptedStrategy strategy(
      EngineConfig{Money::cents(81), {0}, policy.get()},
      EngineConfig{Money::cents(81), {0}, policy.get()},  // same: no change
      kNever);
  Engine engine(market, e, strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  EXPECT_EQ(r.config_changes, 0);
  // One consult per 5-minute tick for a ~65-minute run, plus
  // pre-boundary/boundary consults.
  EXPECT_GE(strategy.decisions_, 12);
}

TEST(EngineConfig, RemovingIdleZoneIsFree) {
  // Zone 1 is over-bid (never active); dropping it changes nothing billed.
  const SpotMarket market = make_market(testing::zones({
      constant_series(0.30, 24 * 12),
      constant_series(2.00, 24 * 12),
  }));
  const Experiment e = small_experiment(2.0, 0.5, 300);
  auto policy = make_policy(PolicyKind::kPeriodic);
  ScriptedStrategy strategy(
      EngineConfig{Money::cents(81), {0, 1}, policy.get()},
      EngineConfig{Money::cents(81), {0}, policy.get()},
      e.start + 30 * kMinute);
  Engine engine(market, e, strategy);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.met_deadline);
  // Identical cost to a single-zone run: zone 1 never billed a cent.
  EXPECT_EQ(r.total_cost, Money::dollars(3 * 0.30));
}

}  // namespace
}  // namespace redspot
