// Pre-refactor oracle property test.
//
// The decomposition of the monolithic engine into the typed event core,
// zone state machines, billing ledger and deadline monitor must be a pure
// restructuring: every run result is required to be bit-identical to the
// pre-refactor engine. This suite replays a randomized matrix of
// configurations — all six strategies (Periodic, Markov-Daly, Rising Edge,
// Threshold, Large-bid, Adaptive), N in {1, 2, 3}, both slack levels, both
// checkpoint costs, termination notices on and off, and fault-injected
// runs — against a golden file generated at the last monolithic-engine
// commit.
//
// Regenerate (only when a deliberate behaviour change is intended) with:
//   REDSPOT_ORACLE_REGEN=/path/to/engine_oracle.txt ./engine_oracle_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/adaptive/adaptive_runner.hpp"
#include "core/engine.hpp"
#include "core/policies/large_bid.hpp"
#include "market/spot_market.hpp"
#include "trace/synthetic.hpp"

namespace redspot {
namespace {

#ifndef REDSPOT_GOLDEN_DIR
#define REDSPOT_GOLDEN_DIR "."
#endif

constexpr int kNumConfigs = 48;

/// The strategies under test; index drives the rotation below.
enum class OracleStrategy {
  kPeriodic,
  kMarkovDaly,
  kRisingEdge,
  kThreshold,
  kLargeBid,
  kAdaptive,
};

const char* name_of(OracleStrategy s) {
  switch (s) {
    case OracleStrategy::kPeriodic: return "periodic";
    case OracleStrategy::kMarkovDaly: return "markov-daly";
    case OracleStrategy::kRisingEdge: return "rising-edge";
    case OracleStrategy::kThreshold: return "threshold";
    case OracleStrategy::kLargeBid: return "large-bid";
    case OracleStrategy::kAdaptive: return "adaptive";
  }
  return "?";
}

/// One line of the golden file: every result-bearing scalar of the run.
std::string result_line(int i, OracleStrategy s, const RunResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "cfg=%02d strat=%s cost=%lld spot=%lld od=%lld done=%d met=%d "
      "finish=%lld ckpts=%d restarts=%d oob=%d outages=%d switch=%d "
      "reconfigs=%d spot_s=%lld od_s=%lld qd=%lld prog=%lld "
      "f=%d/%d/%d/%d/%d/%d bo=%lld",
      i, name_of(s), static_cast<long long>(r.total_cost.micros()),
      static_cast<long long>(r.spot_cost.micros()),
      static_cast<long long>(r.on_demand_cost.micros()), r.completed ? 1 : 0,
      r.met_deadline ? 1 : 0, static_cast<long long>(r.finish_time),
      r.checkpoints_committed, r.restarts, r.out_of_bid_terminations,
      r.full_outages, r.switched_to_on_demand ? 1 : 0, r.config_changes,
      static_cast<long long>(r.spot_instance_seconds),
      static_cast<long long>(r.on_demand_seconds),
      static_cast<long long>(r.queue_delay_total),
      static_cast<long long>(r.committed_progress),
      r.faults.ckpt_write_failures, r.faults.ckpt_corruptions,
      r.faults.restart_failures, r.faults.request_rejections,
      r.faults.notices_dropped, r.faults.notices_late,
      static_cast<long long>(r.faults.backoff_total));
  return buf;
}

/// Deterministically derives config `i` and runs it to completion. With
/// `explicit_classic_regime` the classic-2012 MarketRegime is set on the
/// EngineOptions by name instead of relying on the default — the two must
/// be indistinguishable.
std::string run_config(int i, bool explicit_classic_regime = false) {
  Rng rng(0x0DAC1E5EED, static_cast<std::uint64_t>(i));

  const auto strategy_kind = static_cast<OracleStrategy>(i % 6);
  const double slack = (i / 6) % 2 == 0 ? 0.15 : 0.50;
  const Duration tc = (i / 12) % 2 == 0 ? 300 : 900;
  const Duration notice =
      i % 4 == 1 ? 120 : (i % 4 == 2 ? 600 : 0);
  const bool with_faults = i % 4 == 3;

  // Start 2 days (the history span) plus a varying offset into the trace.
  const SimTime start =
      2 * kDay + static_cast<SimTime>(rng.uniform_index(36)) * kHour +
      static_cast<SimTime>(rng.uniform_index(12)) * kPriceStep;
  Experiment experiment =
      Experiment::paper(start, slack, tc, /*seed=*/0x5EED00 + i);

  // Generate only the window this run can observe.
  SyntheticTraceSpec spec =
      paper_trace_spec(/*seed=*/1000 + static_cast<std::uint64_t>(i % 5));
  spec = trimmed_spec(std::move(spec),
                      experiment.deadline_time() + kHour);
  const SpotMarket market(generate_traces(spec), cc2_instance(),
                          QueueDelayModel(QueueDelayParams::paper_calibrated()));

  const std::size_t n = 1 + i % 3;
  std::vector<std::size_t> zones;
  for (std::size_t z = 0; z < n; ++z)
    zones.push_back((static_cast<std::size_t>(i) + z) % 3);
  const std::vector<Money> grid = paper_bid_grid();
  const Money bid = grid[rng.uniform_index(grid.size())];

  EngineOptions options;
  options.termination_notice = notice;
  if (explicit_classic_regime) options.regime = MarketRegime::classic_2012();
  if (with_faults) {
    options.faults.ckpt_write_failure_rate = 0.15;
    options.faults.ckpt_corruption_rate = 0.10;
    options.faults.restart_failure_rate = 0.20;
    options.faults.request_rejection_rate = 0.25;
    options.faults.notice_drop_rate = 0.30;
    options.faults.notice_late_rate = 0.30;
    options.faults.notice_max_lag = 90;
    options.faults.store_outages.push_back(
        StoreOutage{start + 3 * kHour, start + 5 * kHour});
  }

  std::unique_ptr<Strategy> strategy;
  switch (strategy_kind) {
    case OracleStrategy::kPeriodic:
      strategy = std::make_unique<FixedStrategy>(
          bid, zones, make_policy(PolicyKind::kPeriodic));
      break;
    case OracleStrategy::kMarkovDaly:
      strategy = std::make_unique<FixedStrategy>(
          bid, zones, make_policy(PolicyKind::kMarkovDaly));
      break;
    case OracleStrategy::kRisingEdge:
      strategy = std::make_unique<FixedStrategy>(
          bid, zones, make_policy(PolicyKind::kRisingEdge));
      break;
    case OracleStrategy::kThreshold:
      strategy = std::make_unique<FixedStrategy>(
          bid, zones, make_policy(PolicyKind::kThreshold));
      break;
    case OracleStrategy::kLargeBid:
      strategy = std::make_unique<FixedStrategy>(
          LargeBidPolicy::large_bid(), zones,
          std::make_unique<LargeBidPolicy>(bid));
      break;
    case OracleStrategy::kAdaptive:
      strategy = std::make_unique<AdaptiveStrategy>();
      break;
  }

  Engine engine(market, experiment, *strategy, options);
  return result_line(i, strategy_kind, engine.run());
}

std::vector<std::string> compute_all() {
  std::vector<std::string> lines;
  lines.reserve(kNumConfigs);
  for (int i = 0; i < kNumConfigs; ++i) lines.push_back(run_config(i));
  return lines;
}

TEST(EngineOracle, MatchesPreRefactorResults) {
  const std::vector<std::string> lines = compute_all();

  if (const char* regen = std::getenv("REDSPOT_ORACLE_REGEN")) {
    std::ofstream out(regen);
    ASSERT_TRUE(out.good()) << "cannot write " << regen;
    for (const std::string& line : lines) out << line << "\n";
    GTEST_SKIP() << "regenerated " << regen;
  }

  const std::string golden_path =
      std::string(REDSPOT_GOLDEN_DIR) + "/engine_oracle.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) expected.push_back(line);

  ASSERT_EQ(expected.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(lines[i], expected[i]) << "config " << i;
}

// The regime refactor's safety net: selecting kClassic2012 explicitly is
// bit-identical to the seed engine (whose results the golden file pins
// through the test above), across every strategy / fault / notice shape
// in the rotation. Also pins that the classic regime does not perturb the
// engine-options hash — journal and ensemble keys written before the
// regime layer existed must keep resolving.
TEST(EngineOracle, Classic2012RegimeIsBitIdenticalToDefault) {
  for (const int i : {0, 5, 10, 16, 23, 35, 47}) {
    EXPECT_EQ(run_config(i, /*explicit_classic_regime=*/true), run_config(i))
        << "config " << i;
  }
  EngineOptions defaults;
  EngineOptions classic;
  classic.regime = MarketRegime::classic_2012();
  HashStream hd;
  hash_engine_options(hd, defaults);
  HashStream hc;
  hash_engine_options(hc, classic);
  EXPECT_EQ(hd.digest(), hc.digest());
}

}  // namespace
}  // namespace redspot
